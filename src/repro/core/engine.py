"""ProtectionEngine: fused section-level checksum passing (Section 4.4).

The paper's headline optimisation is that checksums are encoded **once per
protection section** and *passed* through every GEMM of the section, with a
single verification at the section boundary.  The original hook-based
implementation in this repository realised the same algebra but dispatched
Python work at every one of the six attention GEMMs; this module fuses each
section's entire checksum chain into one dispatch at the section-boundary
GEMM:

* :math:`S_{AS}` — at the ``Q K^T`` boundary: encode ``col(X)`` once, carry it
  through ``W_Q`` and ``W_K`` (with bias adjustment), split heads, derive both
  checksum sides of ``AS`` and verify/correct in one batched EEC-ABFT pass
  over all heads.
* :math:`S_{CL}` — at the ``AP V`` boundary: encode the per-head row checksums
  of ``W_V`` and the column checksums of ``AP``, carry both through to ``CL``
  and verify.
* :math:`S_O` — at the ``CL W_O`` boundary: carry the column checksums of
  ``CL`` (stored by the :math:`S_{CL}` step) through the output projection and
  verify ``O``.

The engine owns one :class:`repro.core.checksums.ChecksumState` per section
and the per-layer pass state that links them (``cs_cl_col`` flows from
:math:`S_{CL}` into :math:`S_O`).  Policy — adaptive detection frequencies,
thresholds, statistics — lives in :class:`repro.core.attention_checker.ATTNChecker`,
which drives the engine through the section-level hook
:meth:`repro.nn.attention.AttentionHooks.on_section_output`.

Array backends
--------------
The checksum chain is array-library generic.  Each
:class:`~repro.nn.attention.SectionContext` carries the backend that owns its
arrays, and by default the engine simply *follows* it: encode, carry, verify
and repair run natively in that library (NumPy, CuPy or Torch), so a
device-resident boundary matrix is never round-tripped through host memory on
the critical path.

Passing ``array_backend`` *pins* the engine to one registered backend
instead.  Section outputs that already belong to the pinned backend still run
natively; foreign outputs (say, a NumPy model driving a Torch-pinned engine)
are adopted into the pinned backend before the chain runs and repaired values
are written back afterwards.  Those copies are real transfer overhead and are
timed under the dedicated keys :data:`repro.utils.timing.XFER_H2D` /
:data:`~repro.utils.timing.XFER_D2H`, so the Figure-7 overhead split can
report copy cost separately from checksum math.  On the pure-NumPy path both
keys stay exactly zero.

Verification modes
------------------
The engine supports three verification modes.  At a glance:

============  =====================  ==========================  =================
mode          verification latency   guarantee                   staleness bound
============  =====================  ==========================  =================
*immediate*   in-pass (boundary)     detection **and** in-place  none — repaired
              — full cost on the     correction before the       values are what
              critical path          value is consumed           downstream sees
*deferred*    end of step — flush    detection only; one         one step — flush
              cost still on the      batched pass over all       runs at
              critical path          layers of the step          ``flush()``
*async*       off the critical       detection plus bounded-     ``max_pending_``
              path — a worker        staleness correction of     ``steps`` steps,
              thread verifies        the *retained* boundary     enforced by
              while the next         matrix; outcome flagged     backpressure in
              step computes          ``stale`` for the trainer   ``submit_step``
============  =====================  ==========================  =================

``immediate`` (default)
    Verify and correct at each section boundary, inside the forward pass, so
    a repaired value is what downstream operations consume.  This is the
    semantics the paper evaluates.
``deferred``
    Record the boundary matrix and its carried checksums, and verify all
    sections of all layers of a step in one batched pass at
    :meth:`ProtectionEngine.flush`.  Boundary matrices of the same shape are
    stacked so the whole step costs a handful of vectorised EEC-ABFT calls
    regardless of depth.  Deferred verification is *detection only*: by flush
    time the forward pass has already consumed the (possibly corrupted)
    values, so corrections are not applied retroactively.
``async``
    Same per-step work-item snapshot as deferred, but the batched
    verification runs on a standard-library worker thread while the training
    loop proceeds with the next step's compute — the checker work leaves the
    critical path entirely.  The queues are double-buffered:
    :meth:`protect_section` appends :class:`_DeferredCheck` work items to the
    *front* buffer; :meth:`submit_step` swaps it against an empty buffer and
    hands the snapshot to the worker.  ``max_pending_steps`` bounds how many
    submitted step batches may be in flight: submitting beyond the bound
    *blocks* until the worker catches up, so detection can never trail the
    fault by more than ``max_pending_steps`` steps (the staleness window).
    Within that window the engine upgrades detection to *bounded-staleness
    correction*: a boundary that verifies dirty has its retained matrix
    repaired via EEC-ABFT (on a copy — the live value was already consumed),
    and the outcome is flagged ``stale`` so the trainer can re-execute the
    affected step or abort (see ``TrainerConfig.stale_policy``).  Only the
    *earliest* dirty boundary of a (step, layer) pass is repaired: later
    boundaries of the same pass are propagation shadows of the same fault and
    re-execution, not double-repair, is the recovery for them.

Detection decisions of ``async`` mode are byte-identical to ``deferred``
mode — both run the same batched pass (:meth:`ProtectionEngine._verify_batch`)
over the same per-step snapshots.  Worker-side wall-clock is recorded under
timer keys prefixed ``"async/"`` so callers can split critical-path from
total checker time.

Hot-path kernel schedule
------------------------
Three dispatch/allocation optimisations (all on by default, all
individually revertible to the historical schedule, which stays available
for the equivalence tests and as the benchmark baseline):

``fuse_sibling_gemms``
    ``W_Q`` and ``W_K`` consume the *same* carried checksum ``cs_x``, so the
    two per-projection checksum GEMMs of :math:`S_{AS}` fuse into one GEMM
    against the concatenated operand ``[W_Q | W_K]`` (split back into the Q
    and K halves afterwards — pure axis-split views, no copy), and the two
    bias adjustments collapse into one vectorised in-place add of the
    concatenated float64 bias row.  This is the paper's strided-batched
    fusion argument (§4): fewer, larger launches for the same algebra.
``cache_weight_encodings``
    Everything derived *from weights only* — ``rowcs(W_V)``, the fused
    ``[W_Q | W_K]`` operand, the concatenated/summed bias terms — is cached
    per (layer, kind) and reused until the weights change.  Validity is a
    version check against :func:`repro.utils.versioning.weights_version`
    (bumped by ``Optimizer.step`` and ``Module.load_state_dict``) *plus* an
    identity check on the source arrays, so weight-side encode work runs
    once per weight version instead of once per layer visit.  Code that
    mutates weight storage in place outside those two paths must call
    :meth:`ProtectionEngine.invalidate_weight_cache`.
``reuse_workspace``
    Checksum intermediates live in a
    :class:`~repro.core.workspace.ChecksumWorkspace` arena of named
    shape/dtype/device-keyed buffers filled through the namespaces'
    ``out=`` contract: after one warm-up visit the steady-state hot path
    allocates no managed buffers.  Checksums that outlive the section visit (the
    deferred/async queues) deliberately bypass the arena, and the batched
    verification pass uses a second arena owned by whichever single thread
    runs it — workspace buffers are never aliased by retained state.

``dispatch_counts`` tracks the checksum GEMM/einsum launches (``"gemm"``)
and verification passes (``"detect"``) the engine actually issued — the
measurable side of :meth:`repro.core.sections.SectionCostModel.\
checksum_gemm_dispatches_per_layer`.

Follow-on items tracked in ROADMAP.md: layer-granular re-execution from
retained activations.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.backend import ArrayBackend, backend_of
from repro.core.checksums import (
    ChecksumState,
    adjust_column_checksums_for_bias,
    checksum_weights,
    encode_column_checksums,
    encode_per_head_row_checksums_of_weight,
    encode_row_checksums,
    merge_head_column_checksums,
    split_head_column_checksums,
    update_column_checksums_through_gemm,
    update_column_checksums_with_appended_rows,
)
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.eec_abft import check_columns, check_rows
from repro.core.sections import SECTION_REGISTRY
from repro.core.thresholds import ABFTThresholds
from repro.core.hooks import SectionContext
from repro.core.workspace import ChecksumWorkspace, matmul_into, stack_into
from repro.utils.timing import TimingRegistry, XFER_D2H, XFER_H2D
from repro.utils.versioning import weights_version

__all__ = [
    "SectionOutcome",
    "ProtectionEngine",
    "WeightEncodingCache",
    "fold_request_dirty",
    "request_dirty_from_report",
]


def fold_request_dirty(dirty: Optional[Any], mask: Any) -> Optional[Any]:
    """OR a per-vector dirty mask into a per-request (batch-axis) mask.

    ``mask`` keeps the boundary matrix's leading axes; reducing over
    every non-leading axis attributes the verdict to the batch entries
    (requests) whose slice it touched.  Leaves ``dirty`` unchanged for
    masks without a batch axis to reduce over.
    """
    if mask.ndim < 2:
        return dirty
    flat = mask.reshape(mask.shape[0], -1).any(-1)
    return flat if dirty is None else (dirty | flat)


def request_dirty_from_report(report: MatrixCorrectionReport) -> Optional[Any]:
    """Per-request boolean dirty mask from one verification's sub-reports.

    Shared by the fused engine and the per-GEMM reference backend so both
    attribute serving-time detections to batch entries the same way.
    """
    dirty = None
    for sub in (report.column_report, report.row_report):
        if sub is not None:
            dirty = fold_request_dirty(dirty, sub.detected | sub.aborted)
    return dirty

#: Dataflow order of the protection sections within one layer forward pass
#: (the declaration order of ``SECTION_REGISTRY``: the attention sections
#: first, then the FFN sections — the order the layer executes them).  The
#: async repair pass uses it to find the earliest dirty boundary of a step —
#: the fault site — since later dirty boundaries are propagation shadows.
_SECTION_ORDER = {name: index for index, name in enumerate(SECTION_REGISTRY)}


@dataclass
class SectionOutcome:
    """Result of protecting one section at one boundary.

    ``report`` is ``None`` for work that carried checksums forward without
    verifying (an :math:`S_{CL}` boundary visited only to feed :math:`S_O`,
    or any boundary in deferred/async mode before its batched verification
    ran).  For queued modes the eventual ``report`` holds the *detection*
    outcome (``corrected`` stays 0 — the consumed value was never patched);
    async mode additionally attaches ``repair``, the EEC-ABFT report of
    repairing the retained boundary matrix within the staleness window.
    """

    section: str
    layer_index: int
    step: int
    report: Optional[MatrixCorrectionReport] = None
    operand_repairs: int = 0
    deferred: bool = False
    #: Verification completed after the producing step's values were already
    #: consumed (async mode, dirty boundary) — the trainer's cue to re-execute
    #: or abort under its staleness policy.
    stale: bool = False
    #: Diagnostic: how many step batches had been submitted past this one when
    #: its verification ran.  Bounded by ``max_pending_steps`` (backpressure);
    #: not part of the detection/correction decision.
    lag_steps: int = 0
    #: Bounded-staleness repair of the retained boundary matrix (async mode,
    #: earliest dirty boundary of its pass only).
    repair: Optional[MatrixCorrectionReport] = None
    #: Per-request dirty mask: boolean array over the leading batch axis,
    #: True where detection/abort touched that request's slice of the
    #: boundary matrix.  Populated on serving (prefill/decode) verifications
    #: and by the batched pass; ``None`` when no verification ran or the
    #: boundary had no batch axis.  Sound for attention boundaries because
    #: every attention GEMM is row-independent across the batch axis.
    request_dirty: Optional[Any] = None


class _LayerState:
    """Per-(layer, forward-pass) checksum state linking the sections."""

    __slots__ = ("enabled", "cs_cl_col")

    def __init__(self, enabled: Dict[str, bool]) -> None:
        self.enabled = enabled
        self.cs_cl_col: Optional[Any] = None


class WeightEncodingCache:
    """Version-keyed cache of weight-derived checksum operands.

    An entry is valid only when **both** hold:

    * it was built at the current global weights version
      (:func:`repro.utils.versioning.weights_version`, bumped by every
      optimizer step and ``load_state_dict``), and
    * every source array it was derived from is the *identical object* the
      caller presents now (the optimizer rebinds ``param.data`` on update,
      so a swapped weight can never be served a stale encoding even if no
      version bump happened).

    Anything else is a miss: the builder reruns and the entry is replaced
    in place, so the cache size stays bounded by (layers x encoding kinds).
    Entries hold strong references to their sources, which also guarantees
    an ``is`` comparison can never alias a freed-and-reallocated array.

    Single-writer by design: only the critical-path ``protect_section``
    thread touches it.
    """

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[tuple, Tuple[int, tuple, Any]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, sources: tuple, builder) -> Any:
        version = weights_version()
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry[0] == version
            and len(entry[1]) == len(sources)
            and all(cached is live for cached, live in zip(entry[1], sources))
        ):
            self.hits += 1
            return entry[2]
        self.misses += 1
        value = builder()
        self._entries[key] = (version, tuple(sources), value)
        return value

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class _DeferredCheck:
    """One boundary matrix queued for batched verification.

    The work item of both deferred and async modes: the retained boundary
    matrix (by reference — downstream autograd ops allocate fresh arrays, so
    the retained values stay what the boundary produced) plus its carried
    checksums and the backend they live on.
    """

    __slots__ = ("section", "layer_index", "step", "matrix", "checksums", "backend")

    def __init__(self, section: str, layer_index: int, step: int,
                 matrix: Any, checksums: ChecksumState,
                 backend: Optional[ArrayBackend] = None) -> None:
        self.section = section
        self.layer_index = layer_index
        self.step = step
        self.matrix = matrix
        self.checksums = checksums
        self.backend = backend if backend is not None else backend_of(matrix)


class ProtectionEngine:
    """Section-level checksum-passing engine (mechanics only, no policy).

    Parameters
    ----------
    thresholds:
        EEC-ABFT thresholds used for every verification.
    refresh_checksums:
        Rebuild column checksums after a row-side repair (see
        :func:`repro.core.correction.correct_matrix`).
    repair_operands:
        After a boundary correction, additionally repair the upstream operand
        whose 0D fault caused the propagation (keeps the backward pass clean).
    timers:
        Shared :class:`TimingRegistry`; phase labels match the historical
        per-GEMM backend (``"AS/encode"``, ``"CL/detect"``, ...) so overhead
        reporting is backend-agnostic.  The async worker records under the
        same labels prefixed ``"async/"``; adoption / write-back copies of a
        pinned engine record under ``"xfer/h2d"`` / ``"xfer/d2h"``.
    deferred:
        Select the ``deferred`` verification mode (see module docstring).
    asynchronous:
        Select the ``async`` verification mode.  Mutually exclusive with
        ``deferred``.
    max_pending_steps:
        Async only: bound on in-flight submitted step batches.
        :meth:`submit_step` blocks once the bound is reached, which both
        prevents unbounded queue growth and enforces the staleness window.
    array_backend:
        ``None`` (default) follows the backend that owns each section's
        arrays.  An :class:`~repro.backend.ArrayBackend` instance pins the
        checksum chain to that library: foreign section outputs are adopted
        (``xfer/h2d``) and repaired values written back (``xfer/d2h``).
    fuse_sibling_gemms:
        Carry ``cs_x`` through ``[W_Q | W_K]`` as one concatenated GEMM and
        apply both bias adjustments as one fused in-place add (see the
        module docstring).  ``False`` restores the historical two-GEMM
        schedule (the equivalence-test / benchmark baseline).
    cache_weight_encodings:
        Cache weight-derived encodings per (layer, kind), keyed by the
        global weights version plus source-array identity.
    reuse_workspace:
        Serve checksum intermediates from a :class:`ChecksumWorkspace`
        arena (zero steady-state hot-path allocations) instead of fresh
        per-visit allocations.
    """

    def __init__(
        self,
        thresholds: Optional[ABFTThresholds] = None,
        refresh_checksums: bool = True,
        repair_operands: bool = True,
        timers: Optional[TimingRegistry] = None,
        deferred: bool = False,
        asynchronous: bool = False,
        max_pending_steps: int = 2,
        array_backend: Optional[ArrayBackend] = None,
        fuse_sibling_gemms: bool = True,
        cache_weight_encodings: bool = True,
        reuse_workspace: bool = True,
    ) -> None:
        if deferred and asynchronous:
            raise ValueError("deferred and asynchronous verification are mutually exclusive")
        if max_pending_steps < 1:
            raise ValueError(f"max_pending_steps must be >= 1, got {max_pending_steps}")
        self.thresholds = thresholds or ABFTThresholds()
        self.refresh_checksums = refresh_checksums
        self.repair_operands = repair_operands
        self.timers = timers if timers is not None else TimingRegistry()
        self.deferred = deferred
        self.asynchronous = asynchronous
        self.max_pending_steps = max_pending_steps
        self.array_backend = array_backend
        self.fuse_sibling_gemms = fuse_sibling_gemms
        #: Weight-derived encoding cache (``None`` when disabled).
        self.weight_cache: Optional[WeightEncodingCache] = (
            WeightEncodingCache() if cache_weight_encodings else None
        )
        #: Critical-path intermediate arena (``None`` when disabled).
        self.workspace: Optional[ChecksumWorkspace] = (
            ChecksumWorkspace() if reuse_workspace else None
        )
        # The batched verification pass runs on exactly one thread at a time
        # (the caller in deferred mode, the worker in async mode), but that
        # thread is not the critical-path one — it gets its own arena so the
        # two never share buffers.
        self._batch_workspace: Optional[ChecksumWorkspace] = (
            ChecksumWorkspace() if reuse_workspace else None
        )
        #: Checksum GEMM/einsum launches ("gemm") and verification passes
        #: ("detect") actually dispatched.  "gemm" counts only critical-path
        #: encode/carry launches; "detect" is also incremented by the batched
        #: pass, so async totals are diagnostic rather than exact (the worker
        #: increments concurrently).
        self.dispatch_counts: Dict[str, int] = {"gemm": 0, "detect": 0}
        self._layers: Dict[int, _LayerState] = {}
        #: Front buffer of the double-buffered queue: the step in progress
        #: appends here; submit_step()/flush() swap it out wholesale.
        self._queue: List[_DeferredCheck] = []
        # -- async worker state (guarded by _cv) --------------------------------
        self._cv = threading.Condition()
        self._inbox: Deque[Tuple[int, List[_DeferredCheck]]] = deque()
        self._completed: List[SectionOutcome] = []
        self._inflight = 0
        self._epoch = 0  # number of step batches submitted so far
        self._failure: Optional[BaseException] = None
        self._shutdown = False
        self._discard_on_shutdown = False
        self._worker: Optional[threading.Thread] = None

    # -- pass lifecycle ---------------------------------------------------------

    def begin_layer(self, layer_index: int, enabled: Dict[str, bool]) -> None:
        """Open the pass state for one attention layer forward pass."""
        self._layers[layer_index] = _LayerState(dict(enabled))

    def end_layer(self, layer_index: int) -> None:
        self._layers.pop(layer_index, None)

    def reset(self) -> None:
        """Drop all pass state and queued work; joins the async worker.

        In-flight batches are *discarded*, not verified — reset means the
        caller no longer wants their results.  Caches and workspaces are
        dropped too: a reset engine holds no reference to any model array.
        """
        self._layers.clear()
        self._queue.clear()
        self._join_worker(discard=True)
        with self._cv:
            self._inbox.clear()
            self._completed.clear()
            self._inflight = 0
            self._epoch = 0
            self._failure = None
        if self.weight_cache is not None:
            self.weight_cache.clear()
        if self.workspace is not None:
            self.workspace.clear()
        if self._batch_workspace is not None:
            self._batch_workspace.clear()
        self.dispatch_counts = {"gemm": 0, "detect": 0}

    def invalidate_weight_cache(self) -> None:
        """Drop cached weight-derived encodings.

        Needed only after mutating weight storage *in place* outside the two
        instrumented paths (``Optimizer.step`` / ``Module.load_state_dict``),
        which bump the global weights version themselves.
        """
        if self.weight_cache is not None:
            self.weight_cache.clear()

    def close(self) -> None:
        """Join the async worker thread (idempotent; engine stays usable).

        Graceful: batches already submitted are verified before the worker
        exits, so a later :meth:`harvest`/:meth:`drain` still returns their
        outcomes instead of hanging on stranded in-flight accounting.
        """
        self._join_worker(discard=False)

    @property
    def pending_verifications(self) -> int:
        """Work items in the front buffer, not yet flushed/submitted."""
        return len(self._queue)

    @property
    def pending_steps(self) -> int:
        """Submitted step batches the async worker has not finished yet."""
        with self._cv:
            return self._inflight

    # -- backend adoption -------------------------------------------------------

    @contextmanager
    def _timed(self, key: str, backend: ArrayBackend) -> Iterator[None]:
        """Measure one checksum phase with device-correct boundaries.

        Device libraries launch kernels asynchronously, so the wall clock
        must not start until prior work has retired and must not stop until
        this phase's kernels have: the backend's :meth:`synchronize` barrier
        runs on both edges.  On host backends it is a no-op and the timing is
        byte-identical to a bare ``timers.measure``.
        """
        backend.synchronize()
        with self.timers.measure(key):
            try:
                yield
            finally:
                backend.synchronize()

    # -- workspace / cache plumbing ---------------------------------------------

    def _buf(self, name: str, shape: Tuple[int, ...], xp: Any, dtype: Any = None) -> Optional[Any]:
        """A reusable float64 workspace buffer, or ``None`` with workspace off."""
        if self.workspace is None:
            return None
        return self.workspace.request(name, shape, xp.float64 if dtype is None else dtype, xp)

    def _transient_buf(self, name: str, shape: Tuple[int, ...], xp: Any) -> Optional[Any]:
        """Workspace buffer for checksums that may outlive the section visit.

        In deferred/async mode the boundary checksums are queued and verified
        after later layers (and steps) have run — a reusable buffer would be
        overwritten under the queue, so queued modes always allocate fresh.
        """
        if self.deferred or self.asynchronous:
            return None
        return self._buf(name, shape, xp)

    def _cached_weight(self, key: tuple, sources: tuple, builder) -> Any:
        if self.weight_cache is None:
            return builder()
        return self.weight_cache.lookup(key, sources, builder)

    def _stack_batch(self, name: str, arrays: List[Any], xp: Any) -> Any:
        """Stack a verification group, into a batch-workspace buffer if on."""
        if self._batch_workspace is None:
            # Allocating fallback for the workspace-off configuration.
            # reprolint: disable=WS001
            return xp.stack(arrays)
        first = arrays[0]
        shape = (len(arrays),) + tuple(first.shape)
        out = self._batch_workspace.request(name, shape, first.dtype, xp)
        return stack_into(xp, arrays, out)

    @staticmethod
    def _section_active(ctx: SectionContext, state: _LayerState) -> bool:
        """Whether this boundary has any checksum work this pass.

        Checked *before* operand adoption so a pinned-foreign engine never
        pays ``xfer/h2d`` copies for a section that frequency gating (or a
        missing upstream checksum) is about to skip.
        """
        if ctx.section == "AS":
            return state.enabled.get("AS", False)
        if ctx.section == "CL":
            if ctx.phase == "decode":
                # Decode CL is row-side only and feeds nothing into S_O
                # (decode S_O carries rowcs(W_O) instead of cs_cl_col).
                return state.enabled.get("CL", False)
            return state.enabled.get("CL", False) or state.enabled.get("O", False)
        if ctx.section == "O":
            if ctx.phase == "decode":
                return state.enabled.get("O", False)
            return state.enabled.get("O", False) and state.cs_cl_col is not None
        if ctx.section in ("FF1", "FF2"):
            # Single-GEMM sections with no inter-section carried state (GELU
            # between them breaks any checksum chain): plain per-section gate.
            return state.enabled.get(ctx.section, False)
        raise KeyError(f"unknown protection section {ctx.section!r}")

    def _adopt_section(
        self, ctx: SectionContext, out: Any
    ) -> Tuple[ArrayBackend, Dict[str, Optional[Any]], Any, bool]:
        """Resolve the backend the checksum chain runs on for this section.

        Native case (no pin, or ``out`` already belongs to the pinned
        backend): zero copies, zero transfer time.  Pinned-foreign case:
        adopt the boundary output and every section operand into the pinned
        backend, timing the copies under ``xfer/h2d``.  For host-resident
        backends whose adoption can alias host memory (Torch on CPU) the
        "copy" is free and in-place repairs flow straight back.
        """
        owner = ctx.backend if ctx.backend is not None else backend_of(out)
        pinned = self.array_backend
        if pinned is None or pinned.is_backend_array(out):
            return (pinned or owner), ctx.operands, out, False
        with self._timed(XFER_H2D, pinned):
            ops = {
                # The KV cache is a plain Python object riding along in the
                # operand dict, not an array — never adopt it.
                key: value if key == "kv_cache" or value is None
                else pinned.asarray(value)
                for key, value in ctx.operands.items()
            }
            work = pinned.asarray(out)
        return pinned, ops, work, True

    def _write_back_section(
        self,
        ctx: SectionContext,
        out: Any,
        ops: Dict[str, Optional[Any]],
        work: Any,
        outcome: Optional[SectionOutcome],
    ) -> None:
        """Export a pinned engine's repairs back into the producing arrays.

        Only runs on the adopted (pinned-foreign) path, and only when a
        repair actually mutated data — detection-only verifications leave the
        producing arrays untouched and cost no ``xfer/d2h`` time.
        """
        if outcome is None or outcome.report is None:
            return
        pinned = self.array_backend
        if outcome.report.corrected > 0:
            with self._timed(XFER_D2H, pinned):
                out[...] = pinned.to_numpy(work)
        if outcome.operand_repairs > 0:
            with self._timed(XFER_D2H, pinned):
                for key in ("q", "k_t", "v"):
                    host = ctx.operands.get(key)
                    adopted = ops.get(key)
                    if host is not None and adopted is not None:
                        host[...] = pinned.to_numpy(adopted)

    # -- section dispatch -------------------------------------------------------

    def protect_section(self, ctx: SectionContext, out: Any) -> Optional[SectionOutcome]:
        """Run the fused checksum chain for the section ending at ``out``.

        Returns ``None`` when the layer has no open pass state (hooks attached
        mid-pass) or the section is disabled for this pass.
        """
        state = self._layers.get(ctx.layer_index)
        if state is None:
            return None
        if not self._section_active(ctx, state):
            return None
        if ctx.phase == "decode":
            # Decode always runs natively: the incremental checksum state
            # lives beside the KV cache on the model's own backend, so a
            # pinned-foreign adoption round-trip would desynchronise it.
            if self.array_backend is not None and not self.array_backend.is_backend_array(out):
                raise RuntimeError(
                    "decode protection does not support a pinned-foreign engine; "
                    "run the engine on the model's array backend"
                )
            backend = ctx.backend if ctx.backend is not None else backend_of(out)
            if ctx.section == "AS":
                return self._protect_as_decode(ctx, state, ctx.operands, out, backend)
            if ctx.section == "CL":
                return self._protect_cl_decode(ctx, state, ctx.operands, out, backend)
            if ctx.section == "O":
                return self._protect_o_decode(ctx, state, ctx.operands, out, backend)
            if ctx.section == "FF1":
                # The FFN has no cross-token state, so a decode step is the
                # training algebra at sequence length 1 — O(1) per token.
                return self._protect_ff1(ctx, state, ctx.operands, out, backend)
            if ctx.section == "FF2":
                return self._protect_ff2(ctx, state, ctx.operands, out, backend)
            raise KeyError(f"unknown protection section {ctx.section!r}")
        backend, ops, work, adopted = self._adopt_section(ctx, out)
        if ctx.section == "AS":
            outcome = self._protect_as(ctx, state, ops, work, backend)
        elif ctx.section == "CL":
            outcome = self._protect_cl(ctx, state, ops, work, backend)
        elif ctx.section == "O":
            outcome = self._protect_o(ctx, state, ops, work, backend)
        elif ctx.section == "FF1":
            outcome = self._protect_ff1(ctx, state, ops, work, backend)
        elif ctx.section == "FF2":
            outcome = self._protect_ff2(ctx, state, ops, work, backend)
        else:
            raise KeyError(f"unknown protection section {ctx.section!r}")
        if adopted:
            self._write_back_section(ctx, out, ops, work, outcome)
        return outcome

    def _verify(
        self,
        ctx: SectionContext,
        out: Any,
        checksums: ChecksumState,
        outcome: SectionOutcome,
        backend: ArrayBackend,
    ) -> None:
        """Verify ``out`` now, or queue it for a batched verification pass."""
        if self.deferred or self.asynchronous:
            self._queue.append(
                _DeferredCheck(ctx.section, ctx.layer_index, ctx.step, out,
                               checksums, backend=backend)
            )
            outcome.deferred = True
            return
        with self._timed(f"{ctx.section}/detect", backend):
            self.dispatch_counts["detect"] += 1
            outcome.report = correct_matrix(
                out, checksums, thresholds=self.thresholds,
                refresh_checksums=self.refresh_checksums,
            )
        if ctx.phase != "train":
            outcome.request_dirty = request_dirty_from_report(outcome.report)

    _fold_request_dirty = staticmethod(fold_request_dirty)

    # -- section S_AS -----------------------------------------------------------

    def _protect_as(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        # Gating already happened in protect_section via _section_active.
        xp = backend.namespace_for(out)
        x, w_q, w_k = ops["x"], ops["w_q"], ops["w_k"]
        bias_q, bias_k = ops.get("bias_q"), ops.get("bias_k")
        num_rows = x.shape[-2]
        lead = tuple(x.shape[:-2])
        outcome = SectionOutcome(section="AS", layer_index=ctx.layer_index, step=ctx.step)

        # Encode the section input once...
        with self._timed("AS/encode", backend):
            self.dispatch_counts["gemm"] += 1
            cs_x = encode_column_checksums(
                x, out=self._buf("AS/cs_x", lead + (2, x.shape[-1]), xp)
            )
            if ctx.phase == "prefill" and ops.get("kv_cache") is not None:
                # Seed the cache's incremental input checksums.  Copy, not
                # alias: cs_x may live in a workspace slot shared across
                # layer visits.
                cache = ops["kv_cache"]
                cs_x_buf, _ = cache.ensure_checksum_buffers(xp, x.shape[-1])
                cs_x_buf[...] = cs_x
                cache.cs_x_len = num_rows
        # ...and carry it through every member GEMM of the section.
        with self._timed("AS/update", backend):
            # Sibling fusion: W_Q and W_K consume the same carried checksum,
            # so one GEMM against the cached concatenated operand [W_Q | W_K]
            # replaces the two per-projection checksum GEMMs; the Q/K halves
            # are recovered as axis-split views (no copy).  The fusion
            # *requires* the weight cache — rebuilding the O(D^2) concatenated
            # operand every visit would cost more than the dispatch it saves —
            # and mixed presence of exactly one bias (never produced by
            # MultiHeadAttention) falls back to the per-side schedule.
            if (
                self.fuse_sibling_gemms
                and self.weight_cache is not None
                and (bias_q is None) == (bias_k is None)
            ):
                # Cache identity keys on the *pre-adoption* producer arrays
                # (ctx.operands): a pinned-foreign engine adopts fresh copies
                # every visit, which would defeat an identity check on the
                # adopted operands — the host-side originals are the stable
                # handle.  On the native path ops IS ctx.operands.
                w_qk = self._cached_weight(
                    ("AS/w_qk", ctx.layer_index),
                    (ctx.operands["w_q"], ctx.operands["w_k"]),
                    lambda: xp.concatenate([w_q, w_k], axis=-1),
                )
                d_q = w_q.shape[-1]
                self.dispatch_counts["gemm"] += 1
                cs_qk = matmul_into(
                    xp, cs_x, w_qk,
                    self._buf("AS/cs_qk", lead + (2, w_qk.shape[-1]), xp),
                )
                if bias_q is not None:
                    # Both bias adjustments collapse into one vectorised
                    # in-place add of the cached concatenated float64 bias
                    # row; cs_qk is freshly computed float64, so the values
                    # are identical to the per-side copy-then-add.
                    b_qk = self._cached_weight(
                        ("AS/bias_qk", ctx.layer_index),
                        (ctx.operands["bias_q"], ctx.operands["bias_k"]),
                        lambda: xp.concatenate([
                            xp.astype(xp.asarray(bias_q), xp.float64, copy=False),
                            xp.astype(xp.asarray(bias_k), xp.float64, copy=False),
                        ], axis=-1),
                    )
                    cs_qk[..., 0, :] += num_rows * b_qk
                    cs_qk[..., 1, :] += (num_rows * (num_rows + 1) / 2.0) * b_qk
                cs_q, cs_k = cs_qk[..., :d_q], cs_qk[..., d_q:]
            else:
                self.dispatch_counts["gemm"] += 2
                cs_q = update_column_checksums_through_gemm(cs_x, w_q)
                if bias_q is not None:
                    cs_q = adjust_column_checksums_for_bias(cs_q, bias_q, num_rows)
                cs_k = update_column_checksums_through_gemm(cs_x, w_k)
                if bias_k is not None:
                    cs_k = adjust_column_checksums_for_bias(cs_k, bias_k, num_rows)
            cs_q_ph = split_head_column_checksums(cs_q, ctx.num_heads)     # (B, H, 2, dh)
            cs_k_ph = split_head_column_checksums(cs_k, ctx.num_heads)
            self.dispatch_counts["gemm"] += 2
            # Column side of AS: col(AS) = col(Q) K^T.
            cs_as_col = matmul_into(                                        # (B, H, 2, S)
                xp, cs_q_ph, ops["k_t"],
                self._transient_buf(
                    "AS/cs_as_col", tuple(cs_q_ph.shape[:-1]) + (ops["k_t"].shape[-1],), xp
                ),
            )
            # Row side of AS: row(AS) = Q row(K^T) = Q col(K)^T.
            cs_as_row = matmul_into(                                        # (B, H, S, 2)
                xp, ops["q"], xp.swapaxes(cs_k_ph, -1, -2),
                self._transient_buf("AS/cs_as_row", tuple(ops["q"].shape[:-1]) + (2,), xp),
            )

        self._verify(ctx, out, ChecksumState(col=cs_as_col, row=cs_as_row), outcome, backend)
        if (
            self.repair_operands
            and outcome.report is not None
            and outcome.report.corrected > 0
        ):
            with self._timed("AS/correct", backend):
                q_report = check_columns(ops["q"], cs_q_ph, thresholds=self.thresholds)
                kt_report = check_rows(
                    ops["k_t"], xp.swapaxes(cs_k_ph, -1, -2), thresholds=self.thresholds
                )
            outcome.operand_repairs = q_report.num_corrected + kt_report.num_corrected
        return outcome

    # -- decode sections (serving) ----------------------------------------------
    #
    # A decode step appends one row to the attention input, so every decode
    # boundary matrix has a single query row — the column checksums degenerate
    # (a sum over one row detects nothing the row itself doesn't show), and
    # the decode chain therefore carries *row* checksums only:
    #
    # * S_AS: fold the new input row into the cache's incremental cs(X)
    #   (elementwise, O(1) in the cached length), re-derive col(K) through
    #   W_K, and row(AS) = Q col(K)^T exactly as in training.
    # * S_CL: derive the new V row's checksum from the cached rowcs(W_V)
    #   carry, write it into its cache slot, and row(CL) = AP row(V).
    # * S_O: carry the per-weight-version rowcs(W_O) through the output
    #   projection — row(O) = CL row(W_O).
    #
    # Steady-state checksum GEMM dispatches per layer per token: AS 2, CL 2,
    # O 1 — constant in the cached length (SectionCostModel's serving entry).

    def _decode_cache(self, ops: Dict[str, Optional[Any]], section: str):
        cache = ops.get("kv_cache")
        if cache is None:
            raise RuntimeError(
                f"decode {section} protection requires the KV cache in the "
                "section operands"
            )
        return cache

    def _protect_as_decode(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        xp = backend.namespace_for(out)
        cache = self._decode_cache(ops, "AS")
        x = ops["x"]                      # (B, 1, D) — the new input row
        total_len = cache.length          # post-append cache length T
        lead = tuple(x.shape[:-2])
        outcome = SectionOutcome(section="AS", layer_index=ctx.layer_index, step=ctx.step)
        if cache.cs_x is None or cache.cs_x_len != total_len - 1:
            raise RuntimeError(
                "decode AS protection needs contiguous incremental checksums: "
                f"cache covers {cache.cs_x_len if cache.cs_x is not None else 'no'} "
                f"of {total_len - 1} prior positions — run a protected prefill "
                "and keep the AS section enabled on every decode step"
            )

        with self._timed("AS/encode", backend):
            # O(1) incremental fold of the new row — elementwise AXPYs, not a
            # checksum GEMM dispatch.
            update_column_checksums_with_appended_rows(cache.cs_x, x, total_len - 1)
            cache.cs_x_len = total_len
        with self._timed("AS/update", backend):
            w_k = ops["w_k"]
            bias_k = ops.get("bias_k")
            self.dispatch_counts["gemm"] += 1
            cs_k = matmul_into(
                xp, cache.cs_x, w_k,
                self._buf("AS/decode_cs_k", lead + (2, w_k.shape[-1]), xp),
            )
            if bias_k is not None:
                b_k = self._cached_weight(
                    ("AS/decode_bias_k", ctx.layer_index),
                    (ctx.operands["bias_k"],),
                    lambda: xp.astype(xp.asarray(bias_k), xp.float64, copy=False),
                )
                # Fresh float64 GEMM output: in-place adds are value-identical
                # to adjust_column_checksums_for_bias's copy-then-add.
                cs_k[..., 0, :] += total_len * b_k
                cs_k[..., 1, :] += (total_len * (total_len + 1) / 2.0) * b_k
            cs_k_ph = split_head_column_checksums(cs_k, ctx.num_heads)  # (B, H, 2, dh)
            self.dispatch_counts["gemm"] += 1
            cs_as_row = matmul_into(                                    # (B, H, 1, 2)
                xp, ops["q"], xp.swapaxes(cs_k_ph, -1, -2),
                self._transient_buf(
                    "AS/decode_cs_as_row", tuple(ops["q"].shape[:-1]) + (2,), xp
                ),
            )

        self._verify(ctx, out, ChecksumState(row=cs_as_row), outcome, backend)
        return outcome

    def _protect_cl_decode(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        xp = backend.namespace_for(out)
        cache = self._decode_cache(ops, "CL")
        x = ops["x"]
        ap = ops["ap"]                    # (B, H, 1, T)
        total_len = cache.length
        outcome = SectionOutcome(section="CL", layer_index=ctx.layer_index, step=ctx.step)
        if cache.cs_v_row is None or cache.cs_v_len != total_len - 1:
            raise RuntimeError(
                "decode CL protection needs contiguous incremental checksums: "
                f"cache covers {cache.cs_v_len if cache.cs_v_row is not None else 'no'} "
                f"of {total_len - 1} prior positions — run a protected prefill "
                "and keep the CL section enabled on every decode step"
            )

        with self._timed("CL/encode", backend):
            def build_rowcs() -> Any:
                self.dispatch_counts["gemm"] += 1
                return encode_per_head_row_checksums_of_weight(ops["w_v"], ctx.num_heads)

            rowcs_wv = self._cached_weight(
                ("CL/rowcs_wv", ctx.layer_index), (ctx.operands["w_v"],), build_rowcs
            )
        with self._timed("CL/update", backend):
            self.dispatch_counts["gemm"] += 1
            # Same einsum as the full-sequence chain, over one row — the
            # documented allocating exception (see _protect_cl).
            # reprolint: disable=WS001
            cs_v_new = xp.einsum("...sd,dhw->...hsw", x, rowcs_wv)  # (B, H, 1, 2)
            if ops.get("bias_v") is not None:
                def build_bias_terms() -> Tuple[Any, Any]:
                    bias_heads = xp.astype(
                        xp.asarray(ops["bias_v"]), xp.float64, copy=False
                    ).reshape(ctx.num_heads, ctx.head_dim)
                    _, v2 = checksum_weights(ctx.head_dim, xp=xp)
                    return (
                        xp.sum(bias_heads, axis=-1)[None, :, None],
                        xp.sum(bias_heads * v2, axis=-1)[None, :, None],
                    )

                term0, term1 = self._cached_weight(
                    ("CL/bias_v", ctx.layer_index),
                    (ctx.operands["bias_v"],), build_bias_terms,
                )
                cs_v_new[..., 0] += term0
                cs_v_new[..., 1] += term1
            # Slot the new row's checksum into its preallocated cache
            # position and carry the populated prefix through AP.
            cache.cs_v_row[:, :, total_len - 1:total_len, :] = cs_v_new
            cache.cs_v_len = total_len
            self.dispatch_counts["gemm"] += 1
            cs_cl_row = matmul_into(                                   # (B, H, 1, 2)
                xp, ap, cache.cs_v_row[:, :, :total_len, :],
                self._transient_buf(
                    "CL/decode_cs_cl_row", tuple(ap.shape[:-1]) + (2,), xp
                ),
            )

        self._verify(ctx, out, ChecksumState(row=cs_cl_row), outcome, backend)
        # Decode S_O carries rowcs(W_O) directly; nothing flows via cs_cl_col.
        state.cs_cl_col = None
        return outcome

    def _protect_o_decode(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        xp = backend.namespace_for(out)
        outcome = SectionOutcome(section="O", layer_index=ctx.layer_index, step=ctx.step)
        with self._timed("O/update", backend):
            def build_rowcs_wo() -> Any:
                self.dispatch_counts["gemm"] += 1
                return encode_row_checksums(ops["w_o"])                # (D, 2)

            rowcs_wo = self._cached_weight(
                ("O/rowcs_wo", ctx.layer_index), (ctx.operands["w_o"],), build_rowcs_wo
            )
            self.dispatch_counts["gemm"] += 1
            cs_o_row = matmul_into(                                    # (B, 1, 2)
                xp, ops["cl"], rowcs_wo,
                self._transient_buf(
                    "O/decode_cs_o_row", tuple(ops["cl"].shape[:-1]) + (2,), xp
                ),
            )
        self._verify(ctx, out, ChecksumState(row=cs_o_row), outcome, backend)
        return outcome

    # -- section S_CL -----------------------------------------------------------

    def _protect_cl(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        # At least one of CL/O is enabled (gated via _section_active); when
        # only O is, this boundary is visited solely to derive cs_cl_col.
        cl_enabled = state.enabled.get("CL", False)
        xp = backend.namespace_for(out)
        outcome = SectionOutcome(section="CL", layer_index=ctx.layer_index, step=ctx.step)

        cs_v_row = None
        if cl_enabled:
            # Per-head row checksums of V, derived from W_V without touching V:
            # encode rowcs(W_V) once *per weight version* and carry it through
            # the X W_V GEMM on every visit.
            with self._timed("CL/encode", backend):
                def build_rowcs() -> Any:
                    self.dispatch_counts["gemm"] += 1
                    return encode_per_head_row_checksums_of_weight(ops["w_v"], ctx.num_heads)

                # Identity keys on the pre-adoption array (see _protect_as).
                rowcs_wv = self._cached_weight(
                    ("CL/rowcs_wv", ctx.layer_index), (ctx.operands["w_v"],), build_rowcs
                )
            with self._timed("CL/update", backend):
                self.dispatch_counts["gemm"] += 1
                # Deliberately *not* workspace-backed: einsum with out= loses
                # NumPy's specialised inner loops (~4x slower at attention
                # dims) and Torch's einsum has no out= at all, so this one
                # intermediate allocates per visit — the documented exception
                # to the zero-allocation claim (see SectionCostModel.
                # checksum_workspace_slots).  The contraction itself must stay
                # an einsum: the per-GEMM reference computes it the same way,
                # which is what keeps repaired values bitwise identical.
                # reprolint: disable=WS001
                cs_v_row = xp.einsum("...sd,dhw->...hsw", ops["x"], rowcs_wv)  # (B, H, S, 2)
                if ops.get("bias_v") is not None:
                    def build_bias_terms() -> Tuple[Any, Any]:
                        bias_heads = xp.astype(
                            xp.asarray(ops["bias_v"]), xp.float64, copy=False
                        ).reshape(ctx.num_heads, ctx.head_dim)
                        _, v2 = checksum_weights(ctx.head_dim, xp=xp)
                        return (
                            xp.sum(bias_heads, axis=-1)[None, :, None],
                            xp.sum(bias_heads * v2, axis=-1)[None, :, None],
                        )

                    term0, term1 = self._cached_weight(
                        ("CL/bias_v", ctx.layer_index),
                        (ctx.operands["bias_v"],), build_bias_terms,
                    )
                    # The bias shift lands straight in the freshly computed
                    # einsum output — no defensive copy-then-mutate (the
                    # added values are identical either way).
                    cs_v_row[..., 0] += term0
                    cs_v_row[..., 1] += term1
                if ctx.phase == "prefill" and ops.get("kv_cache") is not None:
                    # Seed the cache's per-position V row checksums (bias
                    # included, matching what decode folds in per token).
                    cache = ops["kv_cache"]
                    prompt_len = cs_v_row.shape[-2]
                    _, cs_v_buf = cache.ensure_checksum_buffers(xp, ops["x"].shape[-1])
                    cs_v_buf[:, :, :prompt_len, :] = cs_v_row
                    cache.cs_v_len = prompt_len

        with self._timed("CL/encode", backend):
            ap = ops["ap"]
            self.dispatch_counts["gemm"] += 1
            cs_ap_col = encode_column_checksums(                               # (B, H, 2, S)
                ap, out=self._buf("CL/cs_ap_col", tuple(ap.shape[:-2]) + (2, ap.shape[-1]), xp)
            )
        with self._timed("CL/update", backend):
            self.dispatch_counts["gemm"] += 1
            cs_cl_col = matmul_into(                                           # (B, H, 2, dh)
                xp, cs_ap_col, ops["v"],
                self._transient_buf(
                    "CL/cs_cl_col", tuple(cs_ap_col.shape[:-1]) + (ops["v"].shape[-1],), xp
                ),
            )
            cs_cl_row = None
            if cl_enabled and cs_v_row is not None:
                # row(CL) = AP row(V): carry the row checksums of V through.
                self.dispatch_counts["gemm"] += 1
                cs_cl_row = matmul_into(                                       # (B, H, S, 2)
                    xp, ap, cs_v_row,
                    self._transient_buf("CL/cs_cl_row", tuple(ap.shape[:-1]) + (2,), xp),
                )

        checksums = ChecksumState(col=cs_cl_col, row=cs_cl_row)
        if cl_enabled:
            self._verify(ctx, out, checksums, outcome, backend)
            if (
                self.repair_operands
                and outcome.report is not None
                and outcome.report.corrected > 0
                and cs_v_row is not None
            ):
                with self._timed("CL/correct", backend):
                    v_report = check_rows(ops["v"], cs_v_row, thresholds=self.thresholds)
                outcome.operand_repairs = v_report.num_corrected
        # Pass the (possibly refreshed) column checksums of CL to section S_O.
        state.cs_cl_col = checksums.col
        return outcome

    # -- section S_O ------------------------------------------------------------

    def _protect_o(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        # Gating (O enabled and a CL checksum to carry) happened in
        # protect_section via _section_active.
        xp = backend.namespace_for(out)
        outcome = SectionOutcome(section="O", layer_index=ctx.layer_index, step=ctx.step)
        with self._timed("O/update", backend):
            merge_buffer = None
            if self.workspace is not None:
                # Merge through a reusable buffer of the moved layout
                # (B, 2, H, dh): no per-visit allocation, same values as the
                # helper's reshape-copy.
                *lead, h, two, dh = state.cs_cl_col.shape
                merge_buffer = self.workspace.request(
                    "O/cs_cl_merged", tuple(lead) + (two, h, dh),
                    getattr(state.cs_cl_col, "dtype", None), xp,
                )
            cs_cl_merged = merge_head_column_checksums(                        # (B, 2, D)
                state.cs_cl_col, out=merge_buffer
            )
            self.dispatch_counts["gemm"] += 1
            cs_o_col = matmul_into(
                xp, cs_cl_merged, ops["w_o"],
                self._transient_buf(
                    "O/cs_o_col", tuple(cs_cl_merged.shape[:-1]) + (ops["w_o"].shape[-1],), xp
                ),
            )
        self._verify(ctx, out, ChecksumState(col=cs_o_col), outcome, backend)
        return outcome

    # -- FFN sections S_FF1 / S_FF2 ---------------------------------------------
    #
    # The GELU between the two feed-forward GEMMs is nonlinear, so no checksum
    # can be carried across it: each FFN GEMM forms its own single-member
    # section, verified at its output.  S_FF1 runs column-side — encode
    # ``col(x)`` once (the one new data-side encoding per layer) and carry it
    # through ``W_up``; S_FF2 runs row-side against the per-weight-version
    # cached ``rowcs(W_down)``, so its steady-state cost is a single carry
    # GEMM.  Decode reuses the same chain unchanged: the FFN has no cross-
    # token state, so one decoded token is the training algebra at sequence
    # length 1 — O(1) per token by construction, no incremental cache state.
    #
    # No operand-repair pass: a single-GEMM section has no interior operands
    # produced by member GEMMs (``x`` / ``h`` are the section *inputs*), so a
    # boundary correction already repairs everything the section owns.  The
    # bias adds run *outside* the sections — the boundary matrices ``H`` and
    # ``FO`` are the raw GEMM outputs, exactly as attention's output-
    # projection bias sits outside :math:`S_O` — so no bias adjustment of the
    # carried checksums is needed.

    def _protect_ff1(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        xp = backend.namespace_for(out)
        x, w_up = ops["x"], ops["w_up"]
        lead = tuple(x.shape[:-2])
        outcome = SectionOutcome(section="FF1", layer_index=ctx.layer_index, step=ctx.step)
        with self._timed("FF1/encode", backend):
            self.dispatch_counts["gemm"] += 1
            cs_x = encode_column_checksums(
                x, out=self._buf("FF1/cs_x", lead + (2, x.shape[-1]), xp)
            )
        with self._timed("FF1/update", backend):
            self.dispatch_counts["gemm"] += 1
            cs_h = matmul_into(                                          # (B, 2, D_ff)
                xp, cs_x, w_up,
                self._transient_buf("FF1/col", lead + (2, w_up.shape[-1]), xp),
            )
        self._verify(ctx, out, ChecksumState(col=cs_h), outcome, backend)
        return outcome

    def _protect_ff2(
        self,
        ctx: SectionContext,
        state: _LayerState,
        ops: Dict[str, Optional[Any]],
        out: Any,
        backend: ArrayBackend,
    ) -> Optional[SectionOutcome]:
        xp = backend.namespace_for(out)
        h = ops["h"]
        outcome = SectionOutcome(section="FF2", layer_index=ctx.layer_index, step=ctx.step)
        with self._timed("FF2/encode", backend):
            def build_rowcs() -> Any:
                self.dispatch_counts["gemm"] += 1
                return encode_row_checksums(ops["w_down"])               # (D_ff, 2)

            # Identity keys on the pre-adoption array (see _protect_as).
            rowcs_wd = self._cached_weight(
                ("FF2/rowcs_w_down", ctx.layer_index),
                (ctx.operands["w_down"],), build_rowcs,
            )
        with self._timed("FF2/update", backend):
            self.dispatch_counts["gemm"] += 1
            cs_fo = matmul_into(                                         # (B, S, 2)
                xp, h, rowcs_wd,
                self._transient_buf("FF2/row", tuple(h.shape[:-1]) + (2,), xp),
            )
        self._verify(ctx, out, ChecksumState(row=cs_fo), outcome, backend)
        return outcome

    # -- batched verification (shared by deferred flush and the async worker) ----

    def _verify_batch(
        self, items: List[_DeferredCheck], timer_prefix: str = ""
    ) -> List[Tuple[_DeferredCheck, SectionOutcome]]:
        """Verify queued boundary matrices in one batched pass per group.

        Checks are grouped by (section, matrix shape, owning backend) and
        stacked along a new leading axis, so all layers of a step are verified
        with a single vectorised EEC-ABFT call per checksum side per group —
        the cross-layer batching of the fused design.  Stacking and detection
        run on each group's own backend.  Detection only: ``corrected`` stays
        0.  Deferred mode and the async worker both run exactly this code,
        which is what makes their detection decisions byte-identical.
        """
        pairs: List[Tuple[_DeferredCheck, SectionOutcome]] = []
        if not items:
            return pairs
        groups: Dict[tuple, List[_DeferredCheck]] = {}
        for item in items:
            # dtype is part of the key: stacking into a shared (reusable)
            # buffer must never silently downcast a mixed-precision batch the
            # way np.stack's promotion would have hidden.
            key = (item.section, tuple(item.matrix.shape),
                   getattr(item.matrix, "dtype", None), id(item.backend))
            groups.setdefault(key, []).append(item)

        for (section, _shape, _dtype, _backend_id), group in groups.items():
            xp = group[0].backend.namespace_for(group[0].matrix)
            with self._timed(f"{timer_prefix}{section}/detect", group[0].backend):
                self.dispatch_counts["detect"] += 1
                # Stacks go through the batch workspace: one reusable buffer
                # per (section, group shape), so the per-step batched pass is
                # allocation-free in steady state too.
                stacked = self._stack_batch(
                    f"{timer_prefix}stack/{section}/matrix",
                    [item.matrix for item in group], xp,
                )
                col_reports = row_reports = None
                if group[0].checksums.has_col():
                    col = self._stack_batch(
                        f"{timer_prefix}stack/{section}/col",
                        [item.checksums.col for item in group], xp,
                    )
                    col_reports = check_columns(
                        stacked, col, thresholds=self.thresholds, correct=False
                    )
                if group[0].checksums.has_row():
                    row = self._stack_batch(
                        f"{timer_prefix}stack/{section}/row",
                        [item.checksums.row for item in group], xp,
                    )
                    row_reports = check_rows(
                        stacked, row, thresholds=self.thresholds, correct=False
                    )
            for index, item in enumerate(group):
                report = MatrixCorrectionReport()
                dirty = None
                if col_reports is not None:
                    report.used_column_side = True
                    report.detected += int(col_reports.detected[index].sum())
                    report.aborted += int(col_reports.aborted[index].sum())
                    dirty = self._fold_request_dirty(
                        dirty, col_reports.detected[index] | col_reports.aborted[index]
                    )
                if row_reports is not None:
                    report.used_row_side = True
                    report.detected += int(row_reports.detected[index].sum())
                    report.aborted += int(row_reports.aborted[index].sum())
                    dirty = self._fold_request_dirty(
                        dirty, row_reports.detected[index] | row_reports.aborted[index]
                    )
                report.residual_extreme = int(self.thresholds.is_extreme(item.matrix).sum())
                pairs.append((
                    item,
                    SectionOutcome(
                        section=item.section,
                        layer_index=item.layer_index,
                        step=item.step,
                        report=report,
                        deferred=True,
                        request_dirty=dirty,
                    ),
                ))
        return pairs

    # -- deferred flush ---------------------------------------------------------

    def flush(self) -> List[SectionOutcome]:
        """Verify every queued boundary matrix, synchronously, right now.

        In deferred mode this is the per-step batched pass (detection only;
        see the module docstring).  In async mode it is a convenience barrier:
        submit whatever the front buffer holds, then :meth:`drain`.
        """
        if self.asynchronous:
            self.submit_step()
            return self.drain()
        items, self._queue = self._queue, []
        return [outcome for _, outcome in self._verify_batch(items)]

    # -- async mode -------------------------------------------------------------

    def submit_step(self) -> int:
        """Swap the front buffer and hand the snapshot to the worker thread.

        Blocks while ``max_pending_steps`` step batches are already in
        flight — the backpressure that bounds both memory growth and
        detection staleness.  Returns the number of work items submitted.
        """
        if not self.asynchronous:
            raise RuntimeError("submit_step() requires asynchronous mode")
        items, self._queue = self._queue, []
        if not items:
            return 0
        with self._cv:
            while self._inflight >= self.max_pending_steps and self._failure is None:
                self._cv.wait()
            # A pending worker failure surfaces here rather than after more
            # wasted submissions; the step's items are dropped with it.
            self._raise_failure_locked()
            self._epoch += 1
            self._inflight += 1
            self._inbox.append((self._epoch, items))
            self._ensure_worker_locked()
            self._cv.notify_all()
        return len(items)

    def harvest(self) -> List[SectionOutcome]:
        """Collect verification results completed so far, without blocking.

        Re-raises an exception the worker hit, instead of swallowing it.
        """
        with self._cv:
            self._raise_failure_locked()
            completed, self._completed = self._completed, []
        return completed

    def drain(self) -> List[SectionOutcome]:
        """Barrier: wait until every submitted step batch has been verified.

        Returns all completed outcomes (including ones finished before the
        call); re-raises any worker exception.
        """
        if not self.asynchronous:
            return []
        with self._cv:
            while self._inflight and self._failure is None:
                self._cv.wait()
            self._raise_failure_locked()
            completed, self._completed = self._completed, []
        return completed

    def _raise_failure_locked(self) -> None:
        if self._failure is not None:
            failure, self._failure = self._failure, None
            raise failure

    def _ensure_worker_locked(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._shutdown = False
            self._discard_on_shutdown = False
            self._worker = threading.Thread(
                target=self._worker_main, name="protection-engine-verifier", daemon=True
            )
            self._worker.start()

    def _join_worker(self, discard: bool) -> None:
        worker = self._worker
        if worker is None:
            return
        with self._cv:
            self._shutdown = True
            self._discard_on_shutdown = discard
            self._cv.notify_all()
        worker.join(timeout=30.0)
        if worker.is_alive():  # pragma: no cover - only on a wedged batch
            raise RuntimeError("protection-engine verification worker did not shut down")
        with self._cv:
            self._worker = None
            self._shutdown = False

    def _worker_main(self) -> None:
        while True:
            with self._cv:
                while not self._inbox and not self._shutdown:
                    self._cv.wait()
                if self._shutdown and self._discard_on_shutdown:
                    # reset(): drop the remaining batches but keep the
                    # in-flight accounting sane for anyone mid-drain.
                    self._inflight -= len(self._inbox)
                    self._inbox.clear()
                    self._cv.notify_all()
                    return
                if not self._inbox:  # graceful shutdown, nothing left
                    return
                epoch, items = self._inbox.popleft()
            try:
                outcomes = self._process_batch(epoch, items)
            except BaseException as exc:  # propagated to the caller at next drain
                with self._cv:
                    self._failure = exc
                    self._inflight -= 1
                    self._cv.notify_all()
            else:
                with self._cv:
                    self._completed.extend(outcomes)
                    self._inflight -= 1
                    self._cv.notify_all()

    def _process_batch(self, epoch: int, items: List[_DeferredCheck]) -> List[SectionOutcome]:
        """Verify one submitted step batch and repair the dirty fault sites.

        Detection runs the exact deferred-mode batched pass.  Then, per step
        counter, the *earliest* dirty boundary in dataflow order — the fault
        site under the paper's single-transient-fault-per-step model — has
        its retained matrix repaired via EEC-ABFT on a copy (the live array
        was already consumed by the forward pass; repairing a copy keeps the
        result race-free for any reader still holding the original).  Dirty
        boundaries downstream of the fault site are propagation shadows: an
        extreme value that escaped its section corrupts everything after it,
        and the recovery for those is step re-execution (the trainer's
        ``stale_policy``), not more repairs.  Backpressure guarantees every
        batch verifies within the ``max_pending_steps`` staleness window, so
        the fault site is always eligible for repair.
        """
        pairs = self._verify_batch(items, timer_prefix="async/")
        with self._cv:
            lag = self._epoch - epoch
        earliest_dirty: Dict[int, Tuple[Tuple[int, int], _DeferredCheck, SectionOutcome]] = {}
        for item, outcome in pairs:
            outcome.lag_steps = lag
            report = outcome.report
            if report.detected or report.aborted or report.residual_extreme:
                outcome.stale = True
                rank = (item.layer_index, _SECTION_ORDER[item.section])
                if item.step not in earliest_dirty or rank < earliest_dirty[item.step][0]:
                    earliest_dirty[item.step] = (rank, item, outcome)
        for _rank, item, outcome in earliest_dirty.values():
            with self._timed(f"async/{item.section}/repair", item.backend):
                repaired = item.backend.copy(item.matrix)
                outcome.repair = correct_matrix(
                    repaired, item.checksums.copy(), thresholds=self.thresholds,
                    refresh_checksums=self.refresh_checksums,
                )
        return [outcome for _, outcome in pairs]

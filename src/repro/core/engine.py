"""ProtectionEngine: fused section-level checksum passing (Section 4.4).

The paper's headline optimisation is that checksums are encoded **once per
protection section** and *passed* through every GEMM of the section, with a
single verification at the section boundary.  The original hook-based
implementation in this repository realised the same algebra but dispatched
Python work at every one of the six attention GEMMs; this module fuses each
section's entire checksum chain into one dispatch at the section-boundary
GEMM:

* :math:`S_{AS}` — at the ``Q K^T`` boundary: encode ``col(X)`` once, carry it
  through ``W_Q`` and ``W_K`` (with bias adjustment), split heads, derive both
  checksum sides of ``AS`` and verify/correct in one batched EEC-ABFT pass
  over all heads.
* :math:`S_{CL}` — at the ``AP V`` boundary: encode the per-head row checksums
  of ``W_V`` and the column checksums of ``AP``, carry both through to ``CL``
  and verify.
* :math:`S_O` — at the ``CL W_O`` boundary: carry the column checksums of
  ``CL`` (stored by the :math:`S_{CL}` step) through the output projection and
  verify ``O``.

The engine owns one :class:`repro.core.checksums.ChecksumState` per section
and the per-layer pass state that links them (``cs_cl_col`` flows from
:math:`S_{CL}` into :math:`S_O`).  Policy — adaptive detection frequencies,
thresholds, statistics — lives in :class:`repro.core.attention_checker.ATTNChecker`,
which drives the engine through the section-level hook
:meth:`repro.nn.attention.AttentionHooks.on_section_output`.

Verification modes
------------------
``immediate`` (default)
    Verify and correct at each section boundary, inside the forward pass, so
    a repaired value is what downstream operations consume.  This is the
    semantics the paper evaluates.
``deferred``
    Record the boundary matrix and its carried checksums, and verify all
    sections of all layers of a step in one batched pass at
    :meth:`ProtectionEngine.flush`.  Boundary matrices of the same shape are
    stacked so the whole step costs a handful of vectorised EEC-ABFT calls
    regardless of depth.  Deferred verification is *detection only*: by flush
    time the forward pass has already consumed the (possibly corrupted)
    values, so corrections are not applied retroactively.  It exists for
    monitoring/telemetry workloads where detection latency of one step is
    acceptable and minimal in-pass overhead matters.

Follow-on items tracked in ROADMAP.md: asynchronous verification off the
critical path, and alternate engine backends (GPU array libraries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.checksums import (
    ChecksumState,
    adjust_column_checksums_for_bias,
    checksum_weights,
    encode_column_checksums,
    encode_per_head_row_checksums_of_weight,
    merge_head_column_checksums,
    split_head_column_checksums,
    update_column_checksums_through_gemm,
)
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.eec_abft import check_columns, check_rows
from repro.core.thresholds import ABFTThresholds
from repro.nn.attention import SectionContext
from repro.utils.timing import TimingRegistry

__all__ = ["SectionOutcome", "ProtectionEngine"]


@dataclass
class SectionOutcome:
    """Result of protecting one section at one boundary.

    ``report`` is ``None`` for work that carried checksums forward without
    verifying (an :math:`S_{CL}` boundary visited only to feed :math:`S_O`,
    or any boundary in deferred mode before :meth:`ProtectionEngine.flush`).
    """

    section: str
    layer_index: int
    step: int
    report: Optional[MatrixCorrectionReport] = None
    operand_repairs: int = 0
    deferred: bool = False


class _LayerState:
    """Per-(layer, forward-pass) checksum state linking the sections."""

    __slots__ = ("enabled", "cs_cl_col")

    def __init__(self, enabled: Dict[str, bool]) -> None:
        self.enabled = enabled
        self.cs_cl_col: Optional[np.ndarray] = None


class _DeferredCheck:
    """One boundary matrix queued for batched verification at flush time."""

    __slots__ = ("section", "layer_index", "step", "matrix", "checksums")

    def __init__(self, section: str, layer_index: int, step: int,
                 matrix: np.ndarray, checksums: ChecksumState) -> None:
        self.section = section
        self.layer_index = layer_index
        self.step = step
        self.matrix = matrix
        self.checksums = checksums


class ProtectionEngine:
    """Section-level checksum-passing engine (mechanics only, no policy).

    Parameters
    ----------
    thresholds:
        EEC-ABFT thresholds used for every verification.
    refresh_checksums:
        Rebuild column checksums after a row-side repair (see
        :func:`repro.core.correction.correct_matrix`).
    repair_operands:
        After a boundary correction, additionally repair the upstream operand
        whose 0D fault caused the propagation (keeps the backward pass clean).
    timers:
        Shared :class:`TimingRegistry`; phase labels match the historical
        per-GEMM backend (``"AS/encode"``, ``"CL/detect"``, ...) so overhead
        reporting is backend-agnostic.
    deferred:
        Select the ``deferred`` verification mode (see module docstring).
    """

    def __init__(
        self,
        thresholds: Optional[ABFTThresholds] = None,
        refresh_checksums: bool = True,
        repair_operands: bool = True,
        timers: Optional[TimingRegistry] = None,
        deferred: bool = False,
    ) -> None:
        self.thresholds = thresholds or ABFTThresholds()
        self.refresh_checksums = refresh_checksums
        self.repair_operands = repair_operands
        self.timers = timers if timers is not None else TimingRegistry()
        self.deferred = deferred
        self._layers: Dict[int, _LayerState] = {}
        self._queue: List[_DeferredCheck] = []

    # -- pass lifecycle ---------------------------------------------------------

    def begin_layer(self, layer_index: int, enabled: Dict[str, bool]) -> None:
        """Open the pass state for one attention layer forward pass."""
        self._layers[layer_index] = _LayerState(dict(enabled))

    def end_layer(self, layer_index: int) -> None:
        self._layers.pop(layer_index, None)

    def reset(self) -> None:
        self._layers.clear()
        self._queue.clear()

    @property
    def pending_verifications(self) -> int:
        """Number of deferred boundary checks waiting for :meth:`flush`."""
        return len(self._queue)

    # -- section dispatch -------------------------------------------------------

    def protect_section(self, ctx: SectionContext, out: np.ndarray) -> Optional[SectionOutcome]:
        """Run the fused checksum chain for the section ending at ``out``.

        Returns ``None`` when the layer has no open pass state (hooks attached
        mid-pass) or the section is disabled for this pass.
        """
        state = self._layers.get(ctx.layer_index)
        if state is None:
            return None
        if ctx.section == "AS":
            return self._protect_as(ctx, state, out)
        if ctx.section == "CL":
            return self._protect_cl(ctx, state, out)
        if ctx.section == "O":
            return self._protect_o(ctx, state, out)
        raise KeyError(f"unknown protection section {ctx.section!r}")

    def _verify(
        self,
        ctx: SectionContext,
        out: np.ndarray,
        checksums: ChecksumState,
        outcome: SectionOutcome,
    ) -> None:
        """Verify ``out`` now, or queue it for the batched flush pass."""
        if self.deferred:
            self._queue.append(
                _DeferredCheck(ctx.section, ctx.layer_index, ctx.step, out, checksums)
            )
            outcome.deferred = True
            return
        with self.timers.measure(f"{ctx.section}/detect"):
            outcome.report = correct_matrix(
                out, checksums, thresholds=self.thresholds,
                refresh_checksums=self.refresh_checksums,
            )

    # -- section S_AS -----------------------------------------------------------

    def _protect_as(self, ctx: SectionContext, state: _LayerState, out: np.ndarray) -> Optional[SectionOutcome]:
        if not state.enabled.get("AS", False):
            return None
        ops = ctx.operands
        x, w_q, w_k = ops["x"], ops["w_q"], ops["w_k"]
        num_rows = x.shape[-2]
        outcome = SectionOutcome(section="AS", layer_index=ctx.layer_index, step=ctx.step)

        # Encode the section input once...
        with self.timers.measure("AS/encode"):
            cs_x = encode_column_checksums(x)
        # ...and carry it through every member GEMM of the section.
        with self.timers.measure("AS/update"):
            cs_q = update_column_checksums_through_gemm(cs_x, w_q)
            if ops.get("bias_q") is not None:
                cs_q = adjust_column_checksums_for_bias(cs_q, ops["bias_q"], num_rows)
            cs_k = update_column_checksums_through_gemm(cs_x, w_k)
            if ops.get("bias_k") is not None:
                cs_k = adjust_column_checksums_for_bias(cs_k, ops["bias_k"], num_rows)
            cs_q_ph = split_head_column_checksums(cs_q, ctx.num_heads)     # (B, H, 2, dh)
            cs_k_ph = split_head_column_checksums(cs_k, ctx.num_heads)
            # Column side of AS: col(AS) = col(Q) K^T.
            cs_as_col = np.matmul(cs_q_ph, ops["k_t"])                      # (B, H, 2, S)
            # Row side of AS: row(AS) = Q row(K^T) = Q col(K)^T.
            cs_as_row = np.matmul(ops["q"], np.swapaxes(cs_k_ph, -1, -2))   # (B, H, S, 2)

        self._verify(ctx, out, ChecksumState(col=cs_as_col, row=cs_as_row), outcome)
        if (
            self.repair_operands
            and outcome.report is not None
            and outcome.report.corrected > 0
        ):
            with self.timers.measure("AS/correct"):
                q_report = check_columns(ops["q"], cs_q_ph, thresholds=self.thresholds)
                kt_report = check_rows(
                    ops["k_t"], np.swapaxes(cs_k_ph, -1, -2), thresholds=self.thresholds
                )
            outcome.operand_repairs = q_report.num_corrected + kt_report.num_corrected
        return outcome

    # -- section S_CL -----------------------------------------------------------

    def _protect_cl(self, ctx: SectionContext, state: _LayerState, out: np.ndarray) -> Optional[SectionOutcome]:
        cl_enabled = state.enabled.get("CL", False)
        o_enabled = state.enabled.get("O", False)
        if not (cl_enabled or o_enabled):
            return None
        ops = ctx.operands
        outcome = SectionOutcome(section="CL", layer_index=ctx.layer_index, step=ctx.step)

        cs_v_row = None
        if cl_enabled:
            # Per-head row checksums of V, derived from W_V without touching V:
            # encode rowcs(W_V) once and carry it through the X W_V GEMM.
            with self.timers.measure("CL/encode"):
                rowcs_wv = encode_per_head_row_checksums_of_weight(ops["w_v"], ctx.num_heads)
            with self.timers.measure("CL/update"):
                cs_v_row = np.einsum("...sd,dhw->...hsw", ops["x"], rowcs_wv)  # (B, H, S, 2)
                if ops.get("bias_v") is not None:
                    bias_heads = np.asarray(ops["bias_v"], dtype=np.float64).reshape(
                        ctx.num_heads, ctx.head_dim
                    )
                    _, v2 = checksum_weights(ctx.head_dim)
                    cs_v_row = cs_v_row.copy()
                    cs_v_row[..., 0] += bias_heads.sum(axis=-1)[None, :, None]
                    cs_v_row[..., 1] += (bias_heads * v2).sum(axis=-1)[None, :, None]

        with self.timers.measure("CL/encode"):
            cs_ap_col = encode_column_checksums(ops["ap"])                     # (B, H, 2, S)
        with self.timers.measure("CL/update"):
            cs_cl_col = np.matmul(cs_ap_col, ops["v"])                         # (B, H, 2, dh)
            cs_cl_row = None
            if cl_enabled and cs_v_row is not None:
                # row(CL) = AP row(V): carry the row checksums of V through.
                cs_cl_row = np.matmul(ops["ap"], cs_v_row)                     # (B, H, S, 2)

        checksums = ChecksumState(col=cs_cl_col, row=cs_cl_row)
        if cl_enabled:
            self._verify(ctx, out, checksums, outcome)
            if (
                self.repair_operands
                and outcome.report is not None
                and outcome.report.corrected > 0
                and cs_v_row is not None
            ):
                with self.timers.measure("CL/correct"):
                    v_report = check_rows(ops["v"], cs_v_row, thresholds=self.thresholds)
                outcome.operand_repairs = v_report.num_corrected
        # Pass the (possibly refreshed) column checksums of CL to section S_O.
        state.cs_cl_col = checksums.col
        return outcome

    # -- section S_O ------------------------------------------------------------

    def _protect_o(self, ctx: SectionContext, state: _LayerState, out: np.ndarray) -> Optional[SectionOutcome]:
        if not state.enabled.get("O", False):
            return None
        if state.cs_cl_col is None:
            return None
        outcome = SectionOutcome(section="O", layer_index=ctx.layer_index, step=ctx.step)
        with self.timers.measure("O/update"):
            cs_cl_merged = merge_head_column_checksums(state.cs_cl_col)        # (B, 2, D)
            cs_o_col = update_column_checksums_through_gemm(cs_cl_merged, ctx.operands["w_o"])
        self._verify(ctx, out, ChecksumState(col=cs_o_col), outcome)
        return outcome

    # -- deferred flush ---------------------------------------------------------

    def flush(self) -> List[SectionOutcome]:
        """Verify every queued boundary matrix in one batched pass per group.

        Queued checks are grouped by (section, matrix shape) and stacked along
        a new leading axis, so all layers of a step are verified with a single
        vectorised EEC-ABFT call per checksum side per group — the
        cross-layer batching option of the fused design.  Detection only; see
        the module docstring.
        """
        outcomes: List[SectionOutcome] = []
        if not self._queue:
            return outcomes
        groups: Dict[tuple, List[_DeferredCheck]] = {}
        for item in self._queue:
            groups.setdefault((item.section, item.matrix.shape), []).append(item)
        self._queue = []

        for (section, _shape), items in groups.items():
            with self.timers.measure(f"{section}/detect"):
                stacked = np.stack([item.matrix for item in items])
                col_reports = row_reports = None
                if items[0].checksums.has_col():
                    col = np.stack([item.checksums.col for item in items])
                    col_reports = check_columns(
                        stacked, col, thresholds=self.thresholds, correct=False
                    )
                if items[0].checksums.has_row():
                    row = np.stack([item.checksums.row for item in items])
                    row_reports = check_rows(
                        stacked, row, thresholds=self.thresholds, correct=False
                    )
            for index, item in enumerate(items):
                report = MatrixCorrectionReport()
                if col_reports is not None:
                    report.used_column_side = True
                    report.detected += int(col_reports.detected[index].sum())
                    report.aborted += int(col_reports.aborted[index].sum())
                if row_reports is not None:
                    report.used_row_side = True
                    report.detected += int(row_reports.detected[index].sum())
                    report.aborted += int(row_reports.aborted[index].sum())
                report.residual_extreme = int(self.thresholds.is_extreme(item.matrix).sum())
                outcomes.append(
                    SectionOutcome(
                        section=item.section,
                        layer_index=item.layer_index,
                        step=item.step,
                        report=report,
                        deferred=True,
                    )
                )
        return outcomes

"""ATTNChecker core: ABFT for the attention mechanism.

This package is the reproduction of the paper's primary contribution:

``thresholds``
    Numerical thresholds (T_near-INF, T_correct, detection tolerances).
``checksums``
    Checksum encoding (unweighted + weighted), propagation of checksums
    through GEMMs and bias additions, head split/merge of checksum blocks.
``eec_abft``
    The Extreme Error Correcting ABFT of Section 4.2 — per-vector detection,
    case analysis (finite / INF / NaN deltas), location and correction of
    INF, NaN and near-INF errors, vectorised over whole matrices.

The checksum/EEC-ABFT stack (``checksums``, ``eec_abft``, ``correction``,
``engine``) is **array-backend generic**: every kernel dispatches through
:mod:`repro.backend`, so the same code protects NumPy, CuPy or Torch arrays
natively, and ``ATTNCheckerConfig.array_backend`` selects (or pins) the
library per checker.
``hooks``
    The attention instrumentation protocol (:class:`AttentionHooks`,
    :class:`GemmContext`, :class:`SectionContext`, the section-boundary op
    map) — defined here, at the bottom of the stack, and re-exported by
    :mod:`repro.nn.attention`, so checkers are importable without the model
    layers.
``patterns``
    Error-pattern classification (0D / 1R / 1C / 2D) and error-type mixes,
    shared with the fault-propagation study.
``correction``
    Matrix-level correction strategies for deterministic, nondeterministic
    and mixed-type patterns (Section 4.3).
``sections``
    The protection-section registry: the paper's three attention sections
    S_AS, S_CL, S_O with checksum passing (Section 4.4), the whole-model
    extension covering the FFN GEMMs (``FF1`` / ``FF2``), the protection
    scopes (``attention`` / ``attention+ffn`` / ``full``) and the cost
    accounting for all of them.
``engine``
    :class:`ProtectionEngine` — the fused section-level checksum-passing
    mechanics: encode once per section, carry through every member GEMM, and
    verify in one batched pass per section.  Three verification modes:
    immediate (in-pass), deferred (one batched pass per step at the step
    boundary) and async (the batched pass runs on a worker thread off the
    training critical path, with bounded-staleness correction of the retained
    boundary matrices).
``attention_checker``
    :class:`ATTNChecker` — the attention hook that ties everything together
    and plugs into :class:`repro.nn.MultiHeadAttention`.  A thin policy layer
    (adaptive frequencies, thresholds, statistics) over a selectable backend:
    the fused ``engine`` (default) or the reference per-GEMM implementation
    (``ATTNCheckerConfig(backend="per_gemm")``).
``adaptive``
    Adaptive ABFT detection frequencies (Section 4.5): Poisson error model,
    fault coverage (FC), fault-coverage efficiency (FCE) and the greedy
    frequency optimiser of Algorithm 1.
"""

from repro.core.thresholds import ABFTThresholds
from repro.core.hooks import (
    FFN_SECTION_BOUNDARY_OPS,
    SECTION_BOUNDARY_OPS,
    AttentionHooks,
    AttentionOp,
    FeedForwardOp,
    GemmContext,
    SectionContext,
    block_boundary_ops,
    op_spec,
    registered_blocks,
)
from repro.core.checksums import (
    ChecksumState,
    checksum_weights,
    clear_checksum_weight_cache,
    encode_column_checksums,
    encode_row_checksums,
    merge_head_column_checksums,
    split_head_column_checksums,
    stacked_checksum_weights,
    update_column_checksums_through_gemm,
    update_row_checksums_through_gemm,
)
from repro.core.workspace import (
    ChecksumWorkspace,
    einsum_into,
    matmul_into,
    stack_into,
)
from repro.core.eec_abft import ColumnCheckReport, check_columns, check_rows
from repro.core.patterns import ErrorPattern, classify_error_pattern, classify_error_types
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.protected_gemm import (
    ProtectedGemmChain,
    ProtectedGemmResult,
    ProtectedMatmul,
    protected_matmul,
)
from repro.core.sections import (
    PROTECT_SCOPES,
    PROTECTION_SECTIONS,
    SECTION_REGISTRY,
    ProtectionSection,
    SectionCostModel,
    sections_for_scope,
)
from repro.core.engine import ProtectionEngine, SectionOutcome, WeightEncodingCache
from repro.core.attention_checker import (
    CHECKER_BACKENDS,
    VERIFICATION_MODES,
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    CheckerStats,
)
from repro.core.adaptive import (
    AdaptiveFrequencyOptimizer,
    ErrorRates,
    OperationVulnerability,
    SectionReliabilityModel,
    optimize_abft_frequencies,
)

__all__ = [
    "ABFTThresholds",
    "AttentionHooks",
    "AttentionOp",
    "FeedForwardOp",
    "GemmContext",
    "SectionContext",
    "SECTION_BOUNDARY_OPS",
    "FFN_SECTION_BOUNDARY_OPS",
    "block_boundary_ops",
    "op_spec",
    "registered_blocks",
    "ChecksumState",
    "ChecksumWorkspace",
    "checksum_weights",
    "stacked_checksum_weights",
    "clear_checksum_weight_cache",
    "matmul_into",
    "einsum_into",
    "stack_into",
    "WeightEncodingCache",
    "encode_column_checksums",
    "encode_row_checksums",
    "update_column_checksums_through_gemm",
    "update_row_checksums_through_gemm",
    "split_head_column_checksums",
    "merge_head_column_checksums",
    "check_columns",
    "check_rows",
    "ColumnCheckReport",
    "ErrorPattern",
    "classify_error_pattern",
    "classify_error_types",
    "correct_matrix",
    "MatrixCorrectionReport",
    "protected_matmul",
    "ProtectedMatmul",
    "ProtectedGemmChain",
    "ProtectedGemmResult",
    "ProtectionSection",
    "PROTECTION_SECTIONS",
    "SECTION_REGISTRY",
    "PROTECT_SCOPES",
    "sections_for_scope",
    "SectionCostModel",
    "ProtectionEngine",
    "SectionOutcome",
    "ATTNChecker",
    "ATTNCheckerConfig",
    "CheckerStats",
    "CHECKER_BACKENDS",
    "VERIFICATION_MODES",
    "VERIFICATION_MODE_CONFIGS",
    "ErrorRates",
    "OperationVulnerability",
    "SectionReliabilityModel",
    "AdaptiveFrequencyOptimizer",
    "optimize_abft_frequencies",
]

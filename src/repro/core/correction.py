"""Matrix-level correction strategies (Section 4.3 of the paper).

:mod:`repro.core.eec_abft` repairs one error per protected vector.  This
module decides *which* checksum side to use and how to combine the two sides,
implementing the three propagation-handling strategies of the paper:

* **Deterministic patterns** — only one pattern can occur, so only one
  checksum side is maintained and a single EEC-ABFT pass suffices (e.g. the
  output matrix ``O`` can only see 0D/1R, handled by column checksums).

* **Nondeterministic patterns** — the pattern may be 1R *or* 1C depending on
  where the originating fault struck (e.g. ``AS``).  Both checksum sides are
  maintained.  The column side is tried first; vectors it aborts on (1D
  propagation, or corruption consistent with checksums because the checksums
  were derived from the corrupted operand) are then repaired by the row side,
  after which the column checksums of the repaired columns are re-derived.

* **Mixed-type patterns** — handled inside EEC-ABFT itself by counting all
  candidate error classes before concluding (Section 4.3, last paragraph);
  at this level they simply show up as vectors corrected through different
  cases.

Like the layers below it, :func:`correct_matrix` is backend-generic: the
matrix, its checksums and all repairs stay on whatever array library produced
them (NumPy, CuPy or Torch), with no host round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.checksums import ChecksumState, encode_column_checksums, encode_row_checksums
from repro.core.eec_abft import ColumnCheckReport, check_columns, check_rows
from repro.core.thresholds import ABFTThresholds

__all__ = ["MatrixCorrectionReport", "correct_matrix"]


@dataclass
class MatrixCorrectionReport:
    """Aggregate outcome of correcting one protected matrix.

    Attributes
    ----------
    detected / corrected / aborted:
        Total vector counts across every pass that ran.
    used_column_side / used_row_side:
        Which checksum sides participated.
    column_report / row_report:
        The underlying per-pass reports (``None`` when a side did not run).
    residual_extreme:
        Number of extreme (INF/NaN/near-INF) elements remaining after all
        correction attempts — zero for every fault the scheme covers.
    checksums_recomputed:
        Whether corrupted column checksums were rebuilt from the repaired data
        (the last step of the nondeterministic-pattern procedure).
    """

    detected: int = 0
    corrected: int = 0
    aborted: int = 0
    used_column_side: bool = False
    used_row_side: bool = False
    column_report: Optional[ColumnCheckReport] = None
    row_report: Optional[ColumnCheckReport] = None
    residual_extreme: int = 0
    checksums_recomputed: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing was detected anywhere."""
        return self.detected == 0

    @property
    def fully_corrected(self) -> bool:
        """True when no extreme values survived correction."""
        return self.residual_extreme == 0


def correct_matrix(
    matrix: Any,
    checksums: ChecksumState,
    thresholds: Optional[ABFTThresholds] = None,
    refresh_checksums: bool = True,
) -> MatrixCorrectionReport:
    """Detect and correct errors in ``matrix`` using the available checksums.

    The matrix is modified in place.  The strategy is chosen from which
    checksum sides are present:

    * column only  -> deterministic handling via :func:`check_columns`;
    * row only     -> deterministic handling via :func:`check_rows`;
    * both         -> nondeterministic handling: column first, row side for
      whatever the column side could not fix, then (optionally) rebuild the
      column checksums from the repaired data so downstream sections receive
      consistent checksums.

    Parameters
    ----------
    refresh_checksums:
        Rebuild ``checksums.col`` from the corrected data when the row side
        had to repair vectors the column side aborted on.
    """
    thresholds = thresholds or ABFTThresholds()
    report = MatrixCorrectionReport()

    if not checksums.has_col() and not checksums.has_row():
        raise ValueError("correct_matrix needs at least one checksum side")

    col_report: Optional[ColumnCheckReport] = None
    row_report: Optional[ColumnCheckReport] = None

    if checksums.has_col():
        col_report = check_columns(matrix, checksums.col, thresholds=thresholds, correct=True)
        report.used_column_side = True
        report.column_report = col_report
        report.detected += col_report.num_detected
        report.corrected += col_report.num_corrected
        report.aborted += col_report.num_aborted

    # When both sides are maintained the pattern is nondeterministic (1R or 1C
    # depending on the fault origin, Section 4.3).  The column side runs
    # first.  If it corrected everything (the 1R / 0D case), we stop there:
    # the row checksums may themselves derive from the corrupted operand
    # (e.g. row(AS) = Q row(K^T) with a faulty Q), so consulting them after a
    # successful column-side repair would re-corrupt the data.  Otherwise —
    # the column side found nothing (possible 1C false negative, because
    # col(AS) = col(Q) K^T is consistent with a faulty K), aborted on a
    # propagated pattern, or left extreme values behind — the row side, whose
    # checksums are uncorrupted in exactly those scenarios, performs the
    # repair.
    needs_row_side = False
    if checksums.has_row():
        if not checksums.has_col():
            needs_row_side = True
        else:
            residual = bool(thresholds.is_extreme(matrix).any())
            column_fixed_everything = (
                col_report is not None
                and col_report.num_corrected > 0
                and col_report.num_aborted == 0
                and not residual
            )
            needs_row_side = not column_fixed_everything

    if needs_row_side:
        row_report = check_rows(matrix, checksums.row, thresholds=thresholds, correct=True)
        report.used_row_side = True
        report.row_report = row_report
        report.detected += row_report.num_detected
        report.corrected += row_report.num_corrected
        report.aborted += row_report.num_aborted

        if checksums.has_col() and refresh_checksums and row_report.num_corrected > 0:
            # The column checksums were consistent with the corrupted data, so
            # they are now inconsistent with the repaired data: rebuild them
            # (the paper re-computes only the affected columns; re-encoding the
            # block is the vectorised equivalent).
            checksums.col = encode_column_checksums(matrix)
            report.checksums_recomputed = True

    report.residual_extreme = int(thresholds.is_extreme(matrix).sum())
    return report

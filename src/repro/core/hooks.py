"""Attention instrumentation protocol — the nn ↔ core seam.

These types name the six GEMMs of the paper's attention execution flow
(Figure 1), the protection-section boundaries of Section 4.4, and the hook
interface through which checkers and fault injectors observe GEMM outputs.
They live in ``repro.core`` — not ``repro.nn`` — because the protection
engine and ATTNChecker *are* hooks: the checker layer must be importable
(and testable) without pulling in the model stack, while the nn layer
imports downward to instrument itself.  :mod:`repro.nn.attention` re-exports
everything here, so model-side code keeps its historical import path.

Arrays are annotated ``Any`` throughout: hooks are xp-generic and receive
whatever array type the owning backend produces (NumPy ndarray, CuPy array,
Torch tensor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.backend import ArrayBackend

__all__ = [
    "AttentionOp",
    "GemmContext",
    "SectionContext",
    "AttentionHooks",
    "SECTION_BOUNDARY_OPS",
]


class AttentionOp(str, enum.Enum):
    """Names of the six GEMMs in the attention execution flow."""

    XQ = "xq"
    XK = "xk"
    XV = "xv"
    QK = "qk"
    APV = "apv"
    CLO = "clo"

    @property
    def output_matrix(self) -> str:
        """Name of the matrix this GEMM produces (paper's Table 1 notation)."""
        return _OP_TO_MATRIX[self]


_OP_TO_MATRIX = {
    AttentionOp.XQ: "Q",
    AttentionOp.XK: "K",
    AttentionOp.XV: "V",
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}

#: GEMMs that end a protection section (Section 4.4): the boundary matrices
#: ``AS``, ``CL`` and ``O`` are produced by these three operations.  The
#: section-level hook :meth:`AttentionHooks.on_section_output` fires exactly
#: here, after the per-GEMM hooks have run on the same output.
SECTION_BOUNDARY_OPS = {
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}


@dataclass
class GemmContext:
    """Everything a hook needs to know about one GEMM invocation.

    Attributes
    ----------
    op:
        Which of the six GEMMs is being executed.
    a, b:
        The operand arrays actually fed to the GEMM (post head-split for the
        per-head operations).  Hooks must treat them as read-only.
    layer_index:
        Index of the attention layer inside the model.
    step:
        Monotonic counter of attention forward passes for this layer
        (increments once per call, i.e. once per training micro-step).
    num_heads, head_dim, seq_len:
        Geometry of the attention call, needed by the checksum machinery.
    phase:
        ``"train"`` (the default — full-sequence forward), ``"prefill"``
        (full-sequence forward that also seeds a KV cache) or ``"decode"``
        (single-token forward against a populated KV cache).  Checkers use
        this to select between the full-sequence and incremental checksum
        algebra.
    kv_cache:
        The per-layer KV cache object for prefill/decode calls (duck-typed —
        core never imports ``repro.nn``), ``None`` for training forwards.
    """

    op: AttentionOp
    a: Any
    b: Any
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    bias: Optional[Any] = None
    phase: str = "train"
    kv_cache: Optional[Any] = None


@dataclass
class SectionContext:
    """Everything a section-level hook needs about one protection section.

    Delivered by :meth:`AttentionHooks.on_section_output` at the *boundary*
    GEMM of each protection section (``qk`` for :math:`S_{AS}`, ``apv`` for
    :math:`S_{CL}`, ``clo`` for :math:`S_O`), carrying every operand of the
    whole section so a checksum-passing engine can encode the section inputs
    once and carry the checksums through all member GEMMs in a single fused
    dispatch, instead of one Python round-trip per GEMM.

    Attributes
    ----------
    section:
        Section name — ``"AS"``, ``"CL"`` or ``"O"``.
    operands:
        Named operand arrays of the section (read-only for hooks):

        * ``"AS"``: ``x``, ``w_q``, ``w_k``, ``bias_q``, ``bias_k`` (biases
          may be ``None``), plus the boundary GEMM operands ``q`` (split
          heads, ``(B, H, S, dh)``) and ``k_t`` (``(B, H, dh, S)``).
        * ``"CL"``: ``x``, ``w_v``, ``bias_v``, plus ``ap`` (attention
          probabilities actually fed to the GEMM, i.e. post-dropout) and
          ``v`` (split heads).
        * ``"O"``: ``cl`` (merged heads, ``(B, S, D)``) and ``w_o``.
    layer_index / step / num_heads / head_dim / seq_len:
        Same geometry as :class:`GemmContext`.
    backend:
        The :class:`repro.backend.ArrayBackend` that owns the section's
        arrays (resolved from the boundary output's type).  Checksum-passing
        engines use it to run encode / carry / verify / repair natively in
        the producing array library, so device-resident section outputs are
        never round-tripped through host memory on the critical path.
        ``None`` falls back to per-array dispatch.
    phase:
        ``"train"``, ``"prefill"`` or ``"decode"`` — see
        :attr:`GemmContext.phase`.  Prefill/decode sections additionally carry
        the layer's KV cache in ``operands["kv_cache"]``.
    """

    section: str
    operands: Dict[str, Optional[Any]]
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    backend: Optional[ArrayBackend] = None
    phase: str = "train"


class AttentionHooks:
    """Base class for attention instrumentation.

    Subclasses override any subset of the callbacks.  The default
    implementation is a no-op, so a hook only pays for what it uses.
    """

    def on_attention_start(self, layer_index: int, step: int) -> None:
        """Called before any GEMM of a forward pass runs."""

    def on_gemm_output(self, ctx: GemmContext, out: Any) -> Any:
        """Called with the raw output of each GEMM; returns the output to use."""
        return out

    def on_section_output(self, ctx: SectionContext, out: Any) -> Any:
        """Called with the boundary matrix of each protection section.

        Fires after every per-GEMM :meth:`on_gemm_output` hook has processed
        the same array (so an injector registered before a checker corrupts
        the matrix first, exactly as in the per-GEMM protocol).  Returns the
        output to use downstream.
        """
        return out

    def consumes_gemm_outputs(self) -> bool:
        """Whether this hook needs the per-GEMM :meth:`on_gemm_output` calls.

        :class:`repro.nn.attention.MultiHeadAttention` skips per-GEMM dispatch
        entirely (no :class:`GemmContext` is built) for non-boundary GEMMs
        when no attached hook consumes them — this is what reduces a fused
        section-level checker to three dispatches per layer instead of six.
        The default detects an overridden :meth:`on_gemm_output`; hooks that
        override it but do not need every GEMM (e.g. a section-level checker)
        override this to return False.
        """
        return type(self).on_gemm_output is not AttentionHooks.on_gemm_output

    def on_matrix(self, name: str, data: Any, layer_index: int, step: int) -> None:
        """Observation callback for non-GEMM intermediate matrices (e.g. AP)."""

    def on_attention_end(self, layer_index: int, step: int) -> None:
        """Called after the output projection completes."""

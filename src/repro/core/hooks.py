"""Block instrumentation protocol — the nn ↔ core seam.

These types name the instrumented GEMMs of the protected transformer blocks,
the protection-section boundaries of Section 4.4 (generalized to any block),
and the hook interface through which checkers and fault injectors observe
GEMM outputs.  They live in ``repro.core`` — not ``repro.nn`` — because the
protection engine and ATTNChecker *are* hooks: the checker layer must be
importable (and testable) without pulling in the model stack, while the nn
layer imports downward to instrument itself.  :mod:`repro.nn.attention`
re-exports everything attention-side, so model-side code keeps its
historical import path.

Two blocks are registered here:

* ``"attention"`` — the six GEMMs of the paper's attention execution flow
  (Figure 1) and the three protection sections ``AS`` / ``CL`` / ``O``;
* ``"ffn"`` — the two feed-forward GEMMs ``x·W_up`` and ``h·W_down`` and the
  single-GEMM protection sections ``FF1`` (boundary matrix ``H``) and
  ``FF2`` (boundary matrix ``FO``).

Any module can declare further GEMM ops and section boundaries through
:func:`register_block_ops`; the registry is keyed by ``(block, op)``.

Arrays are annotated ``Any`` throughout: hooks are xp-generic and receive
whatever array type the owning backend produces (NumPy ndarray, CuPy array,
Torch tensor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.backend import ArrayBackend

__all__ = [
    "AttentionOp",
    "FeedForwardOp",
    "GemmContext",
    "SectionContext",
    "AttentionHooks",
    "SECTION_BOUNDARY_OPS",
    "FFN_SECTION_BOUNDARY_OPS",
    "GemmOpSpec",
    "OP_REGISTRY",
    "register_block_ops",
    "op_spec",
    "block_boundary_ops",
    "registered_blocks",
]


class AttentionOp(str, enum.Enum):
    """Names of the six GEMMs in the attention execution flow."""

    XQ = "xq"
    XK = "xk"
    XV = "xv"
    QK = "qk"
    APV = "apv"
    CLO = "clo"

    @property
    def output_matrix(self) -> str:
        """Name of the matrix this GEMM produces (paper's Table 1 notation)."""
        return _OP_TO_MATRIX[self]


class FeedForwardOp(str, enum.Enum):
    """Names of the two GEMMs in the feed-forward (MLP) execution flow."""

    UP = "ff_up"
    DOWN = "ff_down"

    @property
    def output_matrix(self) -> str:
        """Name of the matrix this GEMM produces (``H`` or ``FO``)."""
        return _FFN_OP_TO_MATRIX[self]


_OP_TO_MATRIX = {
    AttentionOp.XQ: "Q",
    AttentionOp.XK: "K",
    AttentionOp.XV: "V",
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}

_FFN_OP_TO_MATRIX = {
    FeedForwardOp.UP: "H",
    FeedForwardOp.DOWN: "FO",
}

#: GEMMs that end an attention protection section (Section 4.4): the boundary
#: matrices ``AS``, ``CL`` and ``O`` are produced by these three operations.
#: The section-level hook :meth:`AttentionHooks.on_section_output` fires
#: exactly here, after the per-GEMM hooks have run on the same output.
SECTION_BOUNDARY_OPS = {
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}

#: GEMMs that end a feed-forward protection section.  Both FFN GEMMs are
#: section boundaries — GELU between them is nonlinear, so checksums cannot
#: be carried across it and each GEMM forms its own single-member section.
FFN_SECTION_BOUNDARY_OPS = {
    FeedForwardOp.UP: "FF1",
    FeedForwardOp.DOWN: "FF2",
}


@dataclass(frozen=True)
class GemmOpSpec:
    """Registry entry describing one instrumented GEMM of one block.

    ``section`` names the protection section this GEMM *ends* (its output is
    the section's boundary matrix), or ``None`` for interior GEMMs whose
    checksums are carried through to a later boundary.
    """

    block: str
    op: Any
    output_matrix: str
    section: Optional[str]


#: ``(block, op)`` -> :class:`GemmOpSpec` for every registered GEMM.
OP_REGISTRY: Dict[Tuple[str, Any], GemmOpSpec] = {}

#: ``block`` -> ``{op: section_name}`` for that block's boundary GEMMs.
_BLOCK_BOUNDARY_OPS: Dict[str, Mapping[Any, str]] = {}


def register_block_ops(
    block: str,
    op_matrices: Mapping[Any, str],
    boundary_ops: Mapping[Any, str],
) -> None:
    """Declare a block's GEMM ops and section boundaries in the registry.

    ``op_matrices`` maps each op to the name of the matrix it produces;
    ``boundary_ops`` maps the subset of ops that end a protection section to
    that section's name.  Re-registering a block replaces its entries (the
    mapping objects are retained by reference, so a block registered with a
    module-level dict — like attention's :data:`SECTION_BOUNDARY_OPS` — stays
    in sync with it).
    """
    unknown = [op for op in boundary_ops if op not in op_matrices]
    if unknown:
        raise KeyError(
            f"boundary ops {unknown!r} of block {block!r} are not in its op set"
        )
    for op, matrix in op_matrices.items():
        OP_REGISTRY[(block, op)] = GemmOpSpec(
            block=block, op=op, output_matrix=matrix,
            section=boundary_ops.get(op),
        )
    _BLOCK_BOUNDARY_OPS[block] = boundary_ops


def op_spec(block: str, op: Any) -> GemmOpSpec:
    """The registry entry for ``(block, op)``; raises ``KeyError`` if absent."""
    return OP_REGISTRY[(block, op)]


def block_boundary_ops(block: str) -> Mapping[Any, str]:
    """The ``{op: section}`` boundary map of one registered block."""
    return _BLOCK_BOUNDARY_OPS[block]


def registered_blocks() -> Tuple[str, ...]:
    """Names of every registered block, in registration order."""
    return tuple(_BLOCK_BOUNDARY_OPS)


register_block_ops("attention", _OP_TO_MATRIX, SECTION_BOUNDARY_OPS)
register_block_ops("ffn", _FFN_OP_TO_MATRIX, FFN_SECTION_BOUNDARY_OPS)


@dataclass
class GemmContext:
    """Everything a hook needs to know about one GEMM invocation.

    Attributes
    ----------
    op:
        Which registered GEMM is being executed (an :class:`AttentionOp` or
        :class:`FeedForwardOp` member).
    a, b:
        The operand arrays actually fed to the GEMM (post head-split for the
        per-head operations).  Hooks must treat them as read-only.
    layer_index:
        Index of the transformer layer inside the model.
    step:
        Monotonic counter of forward passes for this layer
        (increments once per call, i.e. once per training micro-step).
    num_heads, head_dim, seq_len:
        Geometry of the call, needed by the checksum machinery.  FFN GEMMs
        report the layer's attention geometry unchanged.
    phase:
        ``"train"`` (the default — full-sequence forward), ``"prefill"``
        (full-sequence forward that also seeds a KV cache) or ``"decode"``
        (single-token forward against a populated KV cache).  Checkers use
        this to select between the full-sequence and incremental checksum
        algebra.
    kv_cache:
        The per-layer KV cache object for prefill/decode calls (duck-typed —
        core never imports ``repro.nn``), ``None`` for training forwards.
    block:
        Name of the registered block this GEMM belongs to (``"attention"``
        or ``"ffn"``).
    """

    op: Any
    a: Any
    b: Any
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    bias: Optional[Any] = None
    phase: str = "train"
    kv_cache: Optional[Any] = None
    block: str = "attention"


@dataclass
class SectionContext:
    """Everything a section-level hook needs about one protection section.

    Delivered by :meth:`AttentionHooks.on_section_output` at the *boundary*
    GEMM of each protection section (``qk`` for :math:`S_{AS}`, ``apv`` for
    :math:`S_{CL}`, ``clo`` for :math:`S_O`, ``ff_up`` for :math:`S_{FF1}`,
    ``ff_down`` for :math:`S_{FF2}`), carrying every operand of the whole
    section so a checksum-passing engine can encode the section inputs once
    and carry the checksums through all member GEMMs in a single fused
    dispatch, instead of one Python round-trip per GEMM.

    Attributes
    ----------
    section:
        Section name — ``"AS"``, ``"CL"``, ``"O"``, ``"FF1"`` or ``"FF2"``.
    operands:
        Named operand arrays of the section (read-only for hooks):

        * ``"AS"``: ``x``, ``w_q``, ``w_k``, ``bias_q``, ``bias_k`` (biases
          may be ``None``), plus the boundary GEMM operands ``q`` (split
          heads, ``(B, H, S, dh)``) and ``k_t`` (``(B, H, dh, S)``).
        * ``"CL"``: ``x``, ``w_v``, ``bias_v``, plus ``ap`` (attention
          probabilities actually fed to the GEMM, i.e. post-dropout) and
          ``v`` (split heads).
        * ``"O"``: ``cl`` (merged heads, ``(B, S, D)``) and ``w_o``.
        * ``"FF1"``: ``x`` (the FFN input, ``(B, S, D)``) and ``w_up``
          (``(D, D_ff)``).  The boundary matrix ``H`` is the raw GEMM
          output — the bias add runs outside the section, like attention's
          output-projection bias.
        * ``"FF2"``: ``h`` (the post-activation hidden, ``(B, S, D_ff)``)
          and ``w_down`` (``(D_ff, D)``); boundary ``FO`` is again the raw
          GEMM output.
    layer_index / step / num_heads / head_dim / seq_len:
        Same geometry as :class:`GemmContext`.
    backend:
        The :class:`repro.backend.ArrayBackend` that owns the section's
        arrays (resolved from the boundary output's type).  Checksum-passing
        engines use it to run encode / carry / verify / repair natively in
        the producing array library, so device-resident section outputs are
        never round-tripped through host memory on the critical path.
        ``None`` falls back to per-array dispatch.
    phase:
        ``"train"``, ``"prefill"`` or ``"decode"`` — see
        :attr:`GemmContext.phase`.  Prefill/decode attention sections
        additionally carry the layer's KV cache in ``operands["kv_cache"]``.
    """

    section: str
    operands: Dict[str, Optional[Any]]
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    backend: Optional[ArrayBackend] = None
    phase: str = "train"


class AttentionHooks:
    """Base class for block instrumentation.

    Subclasses override any subset of the callbacks.  The default
    implementation is a no-op, so a hook only pays for what it uses.

    The attention block announces its pass window through the historical
    :meth:`on_attention_start` / :meth:`on_attention_end` pair; other
    registered blocks (the FFN) use the generic :meth:`on_block_start` /
    :meth:`on_block_end` pair with their block name.  Keeping attention on
    its dedicated callbacks preserves the pre-refactor dispatch sequence
    bit-for-bit.
    """

    def on_attention_start(self, layer_index: int, step: int) -> None:
        """Called before any GEMM of an attention forward pass runs."""

    def on_block_start(self, block: str, layer_index: int, step: int) -> None:
        """Called before any GEMM of a non-attention block's pass runs."""

    def on_gemm_output(self, ctx: GemmContext, out: Any) -> Any:
        """Called with the raw output of each GEMM; returns the output to use."""
        return out

    def on_section_output(self, ctx: SectionContext, out: Any) -> Any:
        """Called with the boundary matrix of each protection section.

        Fires after every per-GEMM :meth:`on_gemm_output` hook has processed
        the same array (so an injector registered before a checker corrupts
        the matrix first, exactly as in the per-GEMM protocol).  Returns the
        output to use downstream.
        """
        return out

    def consumes_gemm_outputs(self) -> bool:
        """Whether this hook needs the per-GEMM :meth:`on_gemm_output` calls.

        :class:`repro.nn.attention.MultiHeadAttention` skips per-GEMM dispatch
        entirely (no :class:`GemmContext` is built) for non-boundary GEMMs
        when no attached hook consumes them — this is what reduces a fused
        section-level checker to three dispatches per layer instead of six.
        The default detects an overridden :meth:`on_gemm_output`; hooks that
        override it but do not need every GEMM (e.g. a section-level checker)
        override this to return False.
        """
        return type(self).on_gemm_output is not AttentionHooks.on_gemm_output

    def on_matrix(self, name: str, data: Any, layer_index: int, step: int) -> None:
        """Observation callback for non-GEMM intermediate matrices (e.g. AP)."""

    def on_block_end(self, block: str, layer_index: int, step: int) -> None:
        """Called after a non-attention block's pass completes."""

    def on_attention_end(self, layer_index: int, step: int) -> None:
        """Called after the attention output projection completes."""

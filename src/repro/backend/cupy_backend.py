"""CuPy adapter: the checker kernels on device-resident ``cupy.ndarray``.

CuPy mirrors the NumPy API closely, so — like the NumPy reference — the
namespace is a memoising delegator over the :mod:`cupy` module, patched only
where CuPy diverges (no ``errstate`` context manager, Array-API ``astype``).
The module imports :mod:`cupy` lazily at backend construction; on machines
without CUDA the registry just reports the backend as unavailable.

All encode / carry / detect / correct work stays on the GPU: ``to_numpy``
(``cupy.asnumpy``) and ``from_numpy`` are the only host crossings, and the
engine times them under ``xfer/d2h`` / ``xfer/h2d`` when they happen on the
critical path.

The workspace ``out=`` contract (see :mod:`repro.core.workspace`) mostly
resolves natively: ``cupy.matmul`` / ``cupy.stack`` accept ``out=`` and
``cupy.empty`` backs the arena, so steady-state checksum intermediates reuse
device buffers instead of hitting the CUDA memory pool per layer visit.
``cupy.einsum`` has no ``out=``; the workspace helper probes once and falls
back to the allocating call for that one operation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

import numpy as np

from repro.backend.base import (
    UINT_DTYPE_FOR_FLOAT,
    ArrayBackend,
    BackendCapabilities,
    BackendUnavailable,
)

__all__ = ["CupyNamespace", "CupyBackend"]


def _import_cupy():
    try:
        import cupy  # noqa: PLC0415 - lazy by design
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailable(
            "the 'cupy' array backend requires CuPy (and a CUDA runtime), "
            "which is not installed in this environment"
        ) from exc
    # CuPy being importable does not mean a GPU is reachable (cupy-cuda wheel
    # on a CPU box, missing driver).  Probe now so construction fails with a
    # clean BackendUnavailable — which get_backend("auto") treats as "skip,
    # fall back to NumPy" — instead of the first checksum kernel exploding.
    try:  # pragma: no cover - needs CUDA to take the success path
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise BackendUnavailable(
                "CuPy is installed but reports no CUDA device"
            )
    except BackendUnavailable:
        raise
    except Exception as exc:
        raise BackendUnavailable(
            f"CuPy is installed but no CUDA device is reachable: {exc}"
        ) from exc
    return cupy


class CupyNamespace:
    """``cupy`` with NumPy-compat shims, memoised like the NumPy namespace."""

    def __init__(self, cupy) -> None:
        self._cupy = cupy
        self.float16 = cupy.float16
        self.float32 = cupy.float32
        self.float64 = cupy.float64
        self.int64 = cupy.int64
        self.bool_ = cupy.bool_

    def astype(self, array: Any, dtype: Any, copy: bool = True):
        return self._cupy.asarray(array).astype(dtype, copy=copy)

    def add_at(self, target: Any, indices: Any, values: Any) -> None:
        """Unbuffered scatter-add (CuPy has no ``ufunc.at``; use ``cupyx``)."""
        import cupyx  # noqa: PLC0415 - ships with cupy, lazy like the rest

        cupyx.scatter_add(target, indices, values)

    @contextmanager
    def errstate(self, **_kwargs) -> Iterator[None]:
        """CuPy device kernels raise no IEEE warnings — a no-op context."""
        yield

    def __getattr__(self, name: str) -> Any:
        value = getattr(self._cupy, name)
        setattr(self, name, value)
        return value


class CupyBackend(ArrayBackend):
    """CUDA-resident CuPy implementation of :class:`ArrayBackend`."""

    name = "cupy"

    def __init__(self, device: Optional[int] = None) -> None:
        cupy = _import_cupy()
        self._cupy = cupy
        self._device_id = 0 if device is None else int(device)
        self.xp = CupyNamespace(cupy)

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(device_kind="cuda")

    def device_info(self) -> str:
        return f"cupy {self._cupy.__version__} (cuda:{self._device_id})"

    # -- conversion -------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None):
        return self._cupy.asarray(data, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        return self._cupy.asnumpy(array)

    def copy(self, array: Any):
        return self._cupy.array(array, copy=True)

    # -- identity / memory ------------------------------------------------------

    def is_backend_array(self, obj: Any) -> bool:
        return isinstance(obj, self._cupy.ndarray)

    def shares_memory(self, a: Any, b: Any) -> bool:
        return a.data.ptr == b.data.ptr

    # -- raw bits ---------------------------------------------------------------

    def uint_view(self, array: Any):
        dtype = np.dtype(array.dtype)
        if dtype not in UINT_DTYPE_FOR_FLOAT:
            raise TypeError(f"no integer view for dtype {dtype!r}")
        return array.view(UINT_DTYPE_FOR_FLOAT[dtype])

    # -- synchronisation --------------------------------------------------------

    def synchronize(self) -> None:  # pragma: no cover - needs a GPU
        self._cupy.cuda.get_current_stream().synchronize()

    # -- misc -------------------------------------------------------------------

    def dtype_of(self, array: Any) -> np.dtype:
        return np.dtype(array.dtype)

"""The NumPy reference backend — always present, always the oracle.

The namespace is (almost) the :mod:`numpy` module itself: a memoising wrapper
adds the handful of functions the generic kernels need under Array-API-style
names that older NumPy releases lack as module functions (``astype``), and
everything else resolves straight to ``numpy``.  This keeps the NumPy hot
path byte-identical to the historical direct ``np.`` calls — the cross-backend
equivalence tests compare every other adapter against this one.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend.base import UINT_DTYPE_FOR_FLOAT, ArrayBackend, BackendCapabilities

__all__ = ["NumpyNamespace", "NumpyBackend"]


class NumpyNamespace:
    """``numpy`` plus normalising shims, with memoised attribute lookup."""

    def __init__(self) -> None:
        # Pre-bind the dtype attributes generic code spells as ``xp.<dtype>``.
        self.float16 = np.float16
        self.float32 = np.float32
        self.float64 = np.float64
        self.int64 = np.int64
        self.bool_ = np.bool_

    @staticmethod
    def astype(array: Any, dtype: Any, copy: bool = True) -> np.ndarray:
        """Array-API style ``astype`` (NumPy < 2.0 has no module function)."""
        return np.asarray(array).astype(dtype, copy=copy)

    def __getattr__(self, name: str) -> Any:
        value = getattr(np, name)
        setattr(self, name, value)  # memoise: next lookup skips __getattr__
        return value


class NumpyBackend(ArrayBackend):
    """Host-resident reference implementation of :class:`ArrayBackend`."""

    name = "numpy"

    def __init__(self) -> None:
        self.xp = NumpyNamespace()

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(device_kind="cpu")

    def device_info(self) -> str:
        return f"numpy {np.__version__} (cpu)"

    # -- conversion -------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(data, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def copy(self, array: Any) -> np.ndarray:
        return np.array(array, copy=True)

    # -- identity / memory ------------------------------------------------------

    def is_backend_array(self, obj: Any) -> bool:
        return isinstance(obj, np.ndarray)

    def shares_memory(self, a: Any, b: Any) -> bool:
        return bool(np.shares_memory(a, b))

    # -- raw bits ---------------------------------------------------------------

    def uint_view(self, array: np.ndarray) -> np.ndarray:
        dtype = np.dtype(array.dtype)
        if dtype not in UINT_DTYPE_FOR_FLOAT:
            raise TypeError(f"no integer view for dtype {dtype!r}")
        return array.view(UINT_DTYPE_FOR_FLOAT[dtype])

    # -- misc -------------------------------------------------------------------

    def dtype_of(self, array: Any) -> np.dtype:
        return np.dtype(np.asarray(array).dtype)

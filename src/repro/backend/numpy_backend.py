"""The NumPy reference backend — always present, always the oracle.

The namespace is (almost) the :mod:`numpy` module itself: a memoising wrapper
adds the handful of functions the generic kernels need under Array-API-style
names that older NumPy releases lack as module functions (``astype``), and
everything else resolves straight to ``numpy``.  This keeps the NumPy hot
path byte-identical to the historical direct ``np.`` calls — the cross-backend
equivalence tests compare every other adapter against this one.

The workspace ``out=`` contract (see :mod:`repro.core.workspace`) is native
here: ``matmul`` / ``stack`` / ``einsum`` resolve to the NumPy functions,
which accept ``out=`` directly, and ``empty`` provides the arena's
uninitialised buffers — computing into a reusable buffer runs the exact same
kernel as allocating afresh, so results stay bitwise identical.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend.base import UINT_DTYPE_FOR_FLOAT, ArrayBackend, BackendCapabilities

__all__ = ["NumpyNamespace", "NumpyBackend"]


class NumpyNamespace:
    """``numpy`` plus normalising shims, with memoised attribute lookup."""

    def __init__(self) -> None:
        # Pre-bind the dtype attributes generic code spells as ``xp.<dtype>``.
        self.float16 = np.float16
        self.float32 = np.float32
        self.float64 = np.float64
        self.int64 = np.int64
        self.bool_ = np.bool_

    @staticmethod
    def astype(array: Any, dtype: Any, copy: bool = True) -> np.ndarray:
        """Array-API style ``astype`` (NumPy < 2.0 has no module function).

        ``asanyarray`` (not ``asarray``) so ndarray *subclasses* — the test
        suite's simulated-foreign arrays — keep their type through a cast.
        """
        return np.asanyarray(array).astype(dtype, copy=copy)

    @staticmethod
    def copy(array: Any) -> np.ndarray:
        """``np.copy`` with ``subok`` so ndarray subclasses survive the copy
        (plain ndarrays are byte-identical to the default)."""
        return np.copy(array, subok=True)

    @staticmethod
    def add_at(target: np.ndarray, indices: Any, values: Any) -> None:
        """Unbuffered scatter-add ``target[indices] += values`` in place.

        The embedding backward's gradient scatter: repeated indices must
        accumulate (``np.add.at`` semantics), which plain fancy-index
        assignment does not do.
        """
        np.add.at(target, indices, values)

    def __getattr__(self, name: str) -> Any:
        value = getattr(np, name)
        setattr(self, name, value)  # memoise: next lookup skips __getattr__
        return value


class NumpyBackend(ArrayBackend):
    """Host-resident reference implementation of :class:`ArrayBackend`."""

    name = "numpy"

    def __init__(self) -> None:
        self.xp = NumpyNamespace()

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(device_kind="cpu")

    def device_info(self) -> str:
        return f"numpy {np.__version__} (cpu)"

    # -- conversion -------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(data, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def copy(self, array: Any) -> np.ndarray:
        # subok keeps ndarray subclasses (simulated-foreign arrays) intact.
        return np.array(array, copy=True, subok=True)

    # -- identity / memory ------------------------------------------------------

    def is_backend_array(self, obj: Any) -> bool:
        return isinstance(obj, np.ndarray)

    def shares_memory(self, a: Any, b: Any) -> bool:
        return bool(np.shares_memory(a, b))

    # -- raw bits ---------------------------------------------------------------

    def uint_view(self, array: np.ndarray) -> np.ndarray:
        dtype = np.dtype(array.dtype)
        if dtype not in UINT_DTYPE_FOR_FLOAT:
            raise TypeError(f"no integer view for dtype {dtype!r}")
        return array.view(UINT_DTYPE_FOR_FLOAT[dtype])

    # -- misc -------------------------------------------------------------------

    def dtype_of(self, array: Any) -> np.dtype:
        return np.dtype(np.asarray(array).dtype)

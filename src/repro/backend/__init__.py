"""Pluggable array backends behind the :class:`~repro.nn.attention.SectionContext` seam.

ATTNChecker's headline claim is GPU-resident ABFT with single-digit-percent
overhead; a checker hard-wired to NumPy can never run where that claim lives.
This package is the abstraction that unhooks the checker stack from any one
array library:

``base``
    The :class:`ArrayBackend` protocol (namespace handle ``xp``, adoption /
    export, bit views, memory aliasing, synchronisation, capability flags).
``numpy_backend``
    The always-present host reference — the oracle every adapter is
    byte-compared against.
``cupy_backend`` / ``torch_backend``
    Device adapters that import their library lazily and register only when
    it is installed; **no new hard dependencies**.
``registry``
    ``get_backend("numpy"|"cupy"|"torch"|"auto")``, availability discovery,
    and the name constants CLIs derive their choice lists from.
``dispatch``
    ``backend_of(array)`` / ``namespace_of(array)`` — type-keyed resolution
    the generic kernels use to follow whatever array type a protection
    section produced.

Selection is two-layered and the layers are orthogonal: the kernels *follow*
their inputs (dispatch), while :class:`repro.core.ATTNCheckerConfig`'s
``array_backend`` field optionally *pins* the ProtectionEngine to a specific
backend — mismatched section outputs are then adopted and written back with
the copies timed under the ``xfer/h2d`` / ``xfer/d2h`` keys, so host/device
transfer overhead shows up as its own line in the Figure-7 split.
"""

from repro.backend.base import ArrayBackend, BackendCapabilities, BackendUnavailable
from repro.backend.dispatch import backend_of, clear_dispatch_cache, namespace_of
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    KNOWN_ARRAY_BACKENDS,
    available_array_backends,
    backend_available,
    get_backend,
    known_array_backends,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)

__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "BackendUnavailable",
    "NumpyBackend",
    "KNOWN_ARRAY_BACKENDS",
    "known_array_backends",
    "available_array_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "resolve_backend_name",
    "backend_of",
    "namespace_of",
    "clear_dispatch_cache",
]

"""The :class:`ArrayBackend` protocol — the seam every array library plugs into.

The checker stack (:mod:`repro.tensor.ops`, :mod:`repro.core`) is written
against two small surfaces instead of against NumPy directly:

* a **namespace** ``xp`` exposing the NumPy-flavoured array functions the
  kernels use (``matmul``, ``einsum``, ``where``, ``isfinite``, reductions
  with ``axis=``/``keepdims=`` keywords, ...).  For NumPy the namespace *is*
  the :mod:`numpy` module (plus a couple of normalising shims); CuPy delegates
  to :mod:`cupy`; Torch implements the same surface on ``torch`` functions.

  Namespaces *should* additionally accept NumPy's optional ``out=`` keyword
  on ``matmul``, ``stack`` and (where the library supports it) ``einsum``,
  and expose ``empty`` for uninitialised buffers — the contract behind the
  zero-allocation :class:`repro.core.workspace.ChecksumWorkspace`.  The
  contract is optional: the workspace helpers probe each namespace once and
  fall back to plain allocating calls for namespaces that lack it, so a
  minimal custom namespace stays value-correct, it just forfeits buffer
  reuse.
* a **backend** object (this protocol) owning everything that is *not* plain
  array math: adoption of foreign data (``asarray``/``from_numpy``), export
  back to host NumPy (``to_numpy``), identity tests (``is_backend_array``),
  raw-bit reinterpretation for the fault injector (``uint_view``), memory
  aliasing queries, device synchronisation, and capability flags.

The split matters for the paper's claims: kernels dispatch through ``xp`` so
checksum encoding, EEC-ABFT detection and correction run **on whatever array
type the protection section produced** — device arrays never round-trip
through host memory on the critical path.  Host transfers happen only at the
backend surface (``to_numpy``/``from_numpy``), which is exactly where the
engine hangs its ``xfer/h2d`` / ``xfer/d2h`` timers.

Backends register with :mod:`repro.backend.registry`; adapters for optional
libraries import them lazily so the package has **no hard dependency** beyond
NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "UINT_DTYPE_FOR_FLOAT",
    "BackendCapabilities",
    "BackendUnavailable",
    "ArrayBackend",
]

#: Same-width unsigned-integer dtype per IEEE floating dtype — the shared
#: table behind every NumPy-flavoured backend's :meth:`ArrayBackend.uint_view`
#: (Torch maps to signed widths instead; XOR is bit-identical either way).
UINT_DTYPE_FOR_FLOAT = {
    np.dtype(np.float16): np.uint16,
    np.dtype(np.float32): np.uint32,
    np.dtype(np.float64): np.uint64,
}


class BackendUnavailable(RuntimeError):
    """Requested array backend is known but its library is not importable."""


@dataclass(frozen=True)
class BackendCapabilities:
    """Static capability flags of one array backend.

    Attributes
    ----------
    device_kind:
        ``"cpu"`` for host-resident backends, ``"cuda"`` for device-resident
        ones.  Host-resident backends never pay ``xfer/*`` transfer time
        against a host-resident training loop; "auto" resolution only picks
        backends whose kind is not ``"cpu"``.
    """

    device_kind: str = "cpu"


class ArrayBackend:
    """Base class / protocol for pluggable array libraries.

    Subclasses must set :attr:`name` and :attr:`xp` and implement the
    conversion and identity methods.  Everything the checker stack calls is
    here; anything array-*math* shaped lives on the namespace ``xp`` instead.
    """

    #: Registry name (``"numpy"``, ``"cupy"``, ``"torch"``).
    name: str = "abstract"
    #: The NumPy-flavoured function namespace kernels dispatch through.
    xp: Any = None

    # -- namespace binding ------------------------------------------------------

    def namespace_for(self, array: Any) -> Any:
        """The function namespace to use for kernels operating on ``array``.

        Defaults to :attr:`xp`.  Backends whose library distinguishes the
        *device* an array lives on (Torch) override this to return a namespace
        whose creation functions (``zeros``/``ones``/``arange``/``full``)
        allocate on **the array's own device** rather than the backend's
        default — so a CPU tensor driven through a CUDA-defaulting backend
        meets CPU-resident checksum weights and report masks, not CUDA ones
        (creation-follows-input).
        """
        return self.xp

    # -- capabilities -----------------------------------------------------------

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities()

    @property
    def device_kind(self) -> str:
        return self.capabilities.device_kind

    def device_info(self) -> str:
        """Human-readable device description (for reports and examples)."""
        return f"{self.name} ({self.device_kind})"

    # -- conversion -------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None) -> Any:
        """Adopt ``data`` (host array, nested list, backend array) into the
        backend's array type, avoiding copies when the library allows it."""
        raise NotImplementedError

    def from_numpy(self, array: np.ndarray, dtype: Any = None) -> Any:
        """Adopt a host NumPy array (the h2d direction for device backends)."""
        return self.asarray(array, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        """Export a backend array to host NumPy (the d2h direction)."""
        raise NotImplementedError

    def copy(self, array: Any) -> Any:
        """A defensive deep copy of ``array`` on the backend's device."""
        raise NotImplementedError

    # -- identity / memory ------------------------------------------------------

    def is_backend_array(self, obj: Any) -> bool:
        """Whether ``obj`` is an array this backend operates on natively."""
        raise NotImplementedError

    def shares_memory(self, a: Any, b: Any) -> bool:
        """Whether two backend arrays alias the same buffer (used by EEC-ABFT
        to decide if an in-place correction on a reshaped view must be copied
        back)."""
        raise NotImplementedError

    # -- raw bits ---------------------------------------------------------------

    def uint_view(self, array: Any) -> Any:
        """Reinterpret a floating array as same-width integers, **sharing
        memory** — XORing the view flips bits of the original buffer in place.

        This is what lets :mod:`repro.faults.injector` flip the exponent MSB
        of a device-resident element without a host round-trip.
        """
        raise NotImplementedError

    # -- synchronisation --------------------------------------------------------

    def synchronize(self) -> None:
        """Barrier for asynchronous device work (no-op on host backends).

        Timing code must call this before reading a wall clock so kernel
        launches are not mistaken for kernel executions.
        """

    # -- misc -------------------------------------------------------------------

    def dtype_of(self, array: Any) -> np.dtype:
        """The canonical NumPy dtype describing ``array``'s element type."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name!r} ({self.device_kind})>"

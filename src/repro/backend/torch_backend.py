"""PyTorch adapter: the checker kernels on ``torch.Tensor`` buffers.

Torch's function surface is close to NumPy's but not identical (``dim`` vs
``axis``, ``clamp`` vs ``clip``, tuple-returning ``max``, unbiased ``var``
by default, no ``errstate``), so unlike the NumPy/CuPy namespaces this one is
written out explicitly: every function the generic kernels dispatch to is a
small normalising wrapper with NumPy semantics.  Each namespace instance is
additionally bound to **one device**: creation functions (``zeros``/``ones``/
``arange``/``full``) allocate there, and :meth:`TorchBackend.namespace_for`
hands kernels the namespace of their *input's* device, so creation follows
input instead of silently landing on the backend's default device.  Notable
pins:

* reductions take ``axis=`` / ``keepdims=`` keywords and ``var`` uses
  ``correction=0`` (NumPy's biased estimator) — silently inheriting Torch's
  Bessel correction would shift layer-norm statistics and checksum
  tolerances;
* ``rint`` maps to ``torch.round`` (both round half to even, which the
  EEC-ABFT index location relies on);
* ``argmax`` casts boolean masks to ``uint8`` first (Torch refuses bool);
* ``nonzero`` returns the NumPy-style tuple of index vectors.

The module imports :mod:`torch` lazily at backend construction; when Torch is
absent the registry simply reports the backend as unavailable — no hard
dependency is introduced.

On CPU devices ``from_numpy``/``to_numpy`` alias host memory (zero-copy), so
adopting a NumPy model's activations costs nothing; on CUDA devices they are
real PCIe transfers, which is why the engine wraps them in ``xfer/*`` timers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

import numpy as np

from repro.backend.base import ArrayBackend, BackendCapabilities, BackendUnavailable

__all__ = ["TorchNamespace", "TorchBackend"]


def _import_torch():
    try:
        import torch  # noqa: PLC0415 - lazy by design
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise BackendUnavailable(
            "the 'torch' array backend requires PyTorch, which is not "
            "installed in this environment"
        ) from exc
    return torch


class TorchNamespace:
    """NumPy-semantics function namespace implemented on ``torch``."""

    def __init__(self, torch, device) -> None:
        self._torch = torch
        self._device = device
        self.float16 = torch.float16
        self.float32 = torch.float32
        self.float64 = torch.float64
        self.int64 = torch.int64
        self.bool_ = torch.bool

    # -- creation ---------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None):
        # An existing tensor is never moved between devices here — kernels
        # follow their inputs, and silently migrating a CPU tensor to the
        # backend's default CUDA device would detach in-place repairs from
        # the caller's buffer.  Only non-tensor data adopts onto the default
        # device.
        if self._torch.is_tensor(data):
            return data if dtype is None or data.dtype == dtype else data.to(dtype)
        return self._torch.as_tensor(data, dtype=dtype, device=self._device)

    def zeros(self, shape, dtype: Any = None):
        return self._torch.zeros(shape, dtype=dtype, device=self._device)

    def ones(self, shape, dtype: Any = None):
        return self._torch.ones(shape, dtype=dtype, device=self._device)

    def full(self, shape, fill_value, dtype: Any = None):
        return self._torch.full(shape, fill_value, dtype=dtype, device=self._device)

    def arange(self, start, stop=None, step=1, dtype: Any = None):
        if stop is None:
            start, stop = 0, start
        return self._torch.arange(start, stop, step, dtype=dtype, device=self._device)

    def empty(self, shape, dtype: Any = None):
        """Uninitialised buffer (the :class:`ChecksumWorkspace` allocator)."""
        return self._torch.empty(shape, dtype=dtype, device=self._device)

    # -- dtype / copy -----------------------------------------------------------

    def astype(self, array, dtype, copy: bool = True):
        array = self.asarray(array)
        if array.dtype == dtype:
            return array.clone() if copy else array
        return array.to(dtype)

    def copy(self, array):
        return array.clone()

    # -- like-creation (creation follows input by construction) -----------------

    def zeros_like(self, array, dtype: Any = None):
        return self._torch.zeros_like(array, dtype=dtype)

    def ones_like(self, array, dtype: Any = None):
        return self._torch.ones_like(array, dtype=dtype)

    # -- shape ------------------------------------------------------------------

    def reshape(self, array, shape):
        return array.reshape(shape)

    def stack(self, arrays, axis: int = 0, out: Any = None):
        # out= is part of the workspace contract (see repro.core.workspace):
        # the deferred/async batched verification stacks into reusable buffers.
        if out is None:
            return self._torch.stack(list(arrays), dim=axis)
        return self._torch.stack(list(arrays), dim=axis, out=out)

    def concatenate(self, arrays, axis: int = 0):
        return self._torch.cat(list(arrays), dim=axis)

    def moveaxis(self, array, source, destination):
        return self._torch.movedim(array, source, destination)

    def swapaxes(self, array, axis1, axis2):
        return self._torch.swapaxes(array, axis1, axis2)

    def transpose(self, array, axes=None):
        if axes is None:
            axes = tuple(reversed(range(array.dim())))
        return array.permute(tuple(int(a) for a in axes))

    def broadcast_to(self, array, shape):
        return self._torch.broadcast_to(array, tuple(int(s) for s in shape))

    def expand_dims(self, array, axis):
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        # NumPy inserts all axes relative to the *output* rank, smallest first.
        out_ndim = array.dim() + len(axes)
        axes = sorted(a % out_ndim for a in axes)
        for a in axes:
            array = array.unsqueeze(a)
        return array

    # -- math -------------------------------------------------------------------

    def _promote(self, *tensors):
        """NumPy-style operand reconciliation for ops Torch wants homogeneous.

        Torch's elementwise arithmetic promotes mixed dtypes, but ``matmul``/
        ``einsum``/``dot`` require matching operand dtypes; NumPy promotes
        everywhere.  The checksum chain relies on that (float64 carried
        checksums multiply float32 activations), so promote explicitly here.

        Devices are reconciled too: the backend pins one default device for
        *creation*, but dispatch is type-keyed, so a CPU tensor fed through a
        CUDA-defaulting backend would otherwise collide with device-resident
        checksum weights.  When devices differ, everything moves to the
        largest operand's device — the data stays put, the small weight
        vectors migrate.
        """
        dtypes = {t.dtype for t in tensors}
        if len(dtypes) > 1:
            target = tensors[0].dtype
            for tensor in tensors[1:]:
                target = self._torch.promote_types(target, tensor.dtype)
            tensors = tuple(t.to(target) for t in tensors)
        devices = {t.device for t in tensors}
        if len(devices) > 1:  # pragma: no cover - needs a CUDA device
            anchor = max(tensors, key=lambda t: t.numel()).device
            tensors = tuple(t.to(anchor) for t in tensors)
        return tensors

    def matmul(self, a, b, out: Any = None):
        # out= follows the workspace contract; operands still promote first,
        # so the buffer must be of the promoted dtype (float64 for the
        # checksum chain, which is the only caller that passes out=).
        a, b = self._promote(a, b)
        if out is None:
            return self._torch.matmul(a, b)
        return self._torch.matmul(a, b, out=out)

    def einsum(self, equation, *operands):
        return self._torch.einsum(equation, *self._promote(*operands))

    def dot(self, a, b):
        a, b = self._promote(self.asarray(a), self.asarray(b))
        return self._torch.dot(a, b)

    def exp(self, array):
        return self._torch.exp(array)

    def log(self, array):
        return self._torch.log(array)

    def sqrt(self, array):
        return self._torch.sqrt(self.asarray(array))

    def tanh(self, array):
        return self._torch.tanh(array)

    def abs(self, array):
        return self._torch.abs(array)

    def sign(self, array):
        return self._torch.sign(array)

    def rint(self, array):
        # torch.round rounds half to even, matching numpy.rint exactly.
        return self._torch.round(array)

    def clip(self, array, a_min=None, a_max=None):
        return self._torch.clamp(array, min=a_min, max=a_max)

    def maximum(self, a, b):
        a, b = self._pair(a, b)
        return self._torch.maximum(a, b)

    def minimum(self, a, b):
        a, b = self._pair(a, b)
        return self._torch.minimum(a, b)

    def _pair(self, a, b):
        """Coerce python scalars so binary torch ops accept the pair."""
        if not self._torch.is_tensor(a):
            a = self._torch.as_tensor(a, dtype=b.dtype, device=b.device)
        if not self._torch.is_tensor(b):
            b = self._torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return a, b

    # -- reductions -------------------------------------------------------------

    @staticmethod
    def _keep_full_dims(out, array, keepdims: bool):
        """NumPy's ``keepdims=True`` with ``axis=None``: all axes become 1."""
        return out.reshape((1,) * array.dim()) if keepdims else out

    def sum(self, array, axis=None, dtype: Any = None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.sum(array, dtype=dtype), array, keepdims)
        return self._torch.sum(array, dim=axis, keepdim=keepdims, dtype=dtype)

    def mean(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.mean(array), array, keepdims)
        return self._torch.mean(array, dim=axis, keepdim=keepdims)

    def var(self, array, axis=None, keepdims: bool = False):
        # correction=0 reproduces NumPy's biased variance, not Torch's default.
        if axis is None:
            return self._keep_full_dims(self._torch.var(array, correction=0), array, keepdims)
        return self._torch.var(array, dim=axis, keepdim=keepdims, correction=0)

    def max(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.max(array), array, keepdims)
        return self._torch.amax(array, dim=axis, keepdim=keepdims)

    def min(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.min(array), array, keepdims)
        return self._torch.amin(array, dim=axis, keepdim=keepdims)

    def argmax(self, array, axis=None):
        if array.dtype == self._torch.bool:
            array = array.to(self._torch.uint8)
        if axis is None:
            return self._torch.argmax(array)
        return self._torch.argmax(array, dim=axis)

    def any(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.any(array), array, keepdims)
        return self._torch.any(array, dim=axis, keepdim=keepdims)

    def all(self, array, axis=None, keepdims: bool = False):
        if axis is None:
            return self._keep_full_dims(self._torch.all(array), array, keepdims)
        return self._torch.all(array, dim=axis, keepdim=keepdims)

    # -- logic / selection ------------------------------------------------------

    def isfinite(self, array):
        return self._torch.isfinite(array)

    def isnan(self, array):
        return self._torch.isnan(array)

    def isinf(self, array):
        return self._torch.isinf(array)

    def where(self, condition, x=None, y=None):
        if x is None and y is None:
            return self._torch.where(condition)
        x, y = self._pair(x, y)
        return self._torch.where(condition, x, y)

    def nonzero(self, array):
        return self._torch.where(array != 0) if array.dtype != self._torch.bool \
            else self._torch.where(array)

    def allclose(self, a, b, rtol: float = 1e-5, atol: float = 1e-8):
        a, b = self._pair(a, b)
        if a.dtype != b.dtype:
            b = b.to(a.dtype)
        return bool(self._torch.allclose(a, b, rtol=rtol, atol=atol))

    def put_along_axis(self, array, indices, values, axis: int):
        array.scatter_(axis, indices.to(self._torch.int64), values)

    def add_at(self, target, indices, values) -> None:
        """Unbuffered scatter-add along the leading axis (``np.add.at``).

        The autograd embedding backward only scatters row gradients into a
        2-D table, so leading-axis ``index_add_`` covers the generic kernels'
        use; repeated indices accumulate, matching NumPy exactly.
        """
        indices = self.asarray(indices).to(self._torch.int64)
        target.index_add_(0, indices, self.asarray(values).to(target.dtype))

    # -- numerics context -------------------------------------------------------

    @contextmanager
    def errstate(self, **_kwargs) -> Iterator[None]:
        """Torch emits no IEEE warnings for inf/nan arithmetic — a no-op."""
        yield


_TORCH_TO_NUMPY_DTYPE = {
    "torch.float16": np.float16,
    "torch.float32": np.float32,
    "torch.float64": np.float64,
    "torch.int64": np.int64,
    "torch.int32": np.int32,
    "torch.bool": np.bool_,
}


class TorchBackend(ArrayBackend):
    """Device-aware Torch implementation of :class:`ArrayBackend`.

    ``device=None`` selects CUDA when Torch reports an available GPU and CPU
    otherwise, so the same configuration string (``array_backend="torch"``)
    is portable between a CUDA box and the CPU-only CI job.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        torch = _import_torch()
        self._torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)
        self.xp = TorchNamespace(torch, self.device)
        self._namespaces = {self.device: self.xp}

    def namespace_for(self, array):
        """A namespace whose creation functions allocate on ``array``'s device.

        This is the creation-follows-input rule: ``asarray`` never migrates an
        existing tensor and GEMM/einsum operands device-reconcile, but checksum
        weights and report masks are *created* inside the kernels — binding the
        namespace to the input's device keeps a CPU tensor driven through a
        CUDA-defaulting backend entirely on CPU (and vice versa).
        """
        device = array.device
        namespace = self._namespaces.get(device)
        if namespace is None:
            namespace = TorchNamespace(self._torch, device)
            self._namespaces[device] = namespace
        return namespace

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            device_kind=self.device.type if self.device.type == "cuda" else "cpu",
        )

    def device_info(self) -> str:
        return f"torch {self._torch.__version__} ({self.device})"

    # -- conversion -------------------------------------------------------------

    def asarray(self, data: Any, dtype: Any = None):
        return self._torch.as_tensor(data, dtype=dtype, device=self.device)

    def to_numpy(self, array: Any) -> np.ndarray:
        return array.detach().cpu().numpy()

    def copy(self, array: Any):
        return array.clone()

    # -- identity / memory ------------------------------------------------------

    def is_backend_array(self, obj: Any) -> bool:
        return self._torch.is_tensor(obj)

    def shares_memory(self, a: Any, b: Any) -> bool:
        # Start-pointer equality is sufficient for the checker's use (a
        # reshape either returned a view at the same offset or a fresh copy).
        return a.data_ptr() == b.data_ptr()

    # -- raw bits ---------------------------------------------------------------

    def uint_view(self, array: Any):
        """Signed same-width integer view (XOR semantics are bit-identical)."""
        torch = self._torch
        views = {torch.float16: torch.int16, torch.float32: torch.int32,
                 torch.float64: torch.int64}
        if array.dtype not in views:
            raise TypeError(f"no integer view for dtype {array.dtype!r}")
        return array.view(views[array.dtype])

    # -- synchronisation --------------------------------------------------------

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - needs a GPU
            self._torch.cuda.synchronize(self.device)

    # -- misc -------------------------------------------------------------------

    def dtype_of(self, array: Any) -> np.dtype:
        try:
            return np.dtype(_TORCH_TO_NUMPY_DTYPE[str(array.dtype)])
        except KeyError as exc:
            raise TypeError(f"unmapped torch dtype {array.dtype!r}") from exc

"""Backend registry: discovery, lazy construction, and name resolution.

The registry is the single source of truth for which array libraries the
checker stack can run on.  Three backends ship in-tree — the always-present
NumPy reference plus CuPy and Torch adapters that construct lazily and are
reported *unavailable* (not errors) when their library is missing — and
out-of-tree code (tests, downstream users) can :func:`register_backend`
additional ones.

Naming rules consumed across the stack:

* ``KNOWN_ARRAY_BACKENDS`` is what CLIs and configs derive their choice lists
  from — never hard-code backend name strings elsewhere;
* :func:`available_array_backends` narrows that to backends whose library is
  importable on this machine (checked via ``importlib.util.find_spec``, so no
  heavyweight import happens just to render ``--help``);
* :func:`get_backend` resolves a name to a cached backend instance.
  ``"auto"`` picks the best available *device* backend (CuPy, then Torch —
  each only when it can actually reach a CUDA device) and falls back to
  NumPy, so on a NumPy-only host ``get_backend("auto")`` **is** the NumPy
  backend;
* unknown names raise :class:`ValueError` and known-but-uninstalled names
  raise :class:`~repro.backend.base.BackendUnavailable`, both spelling out
  what is known vs. what is installed.
"""

from __future__ import annotations

import importlib.util
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.backend.base import ArrayBackend, BackendUnavailable

__all__ = [
    "KNOWN_ARRAY_BACKENDS",
    "known_array_backends",
    "register_backend",
    "unregister_backend",
    "available_array_backends",
    "backend_available",
    "resolve_backend_name",
    "get_backend",
]


def _numpy_factory() -> ArrayBackend:
    from repro.backend.numpy_backend import NumpyBackend

    return NumpyBackend()


def _cupy_factory() -> ArrayBackend:
    from repro.backend.cupy_backend import CupyBackend

    return CupyBackend()


def _torch_factory() -> ArrayBackend:
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend()


#: name -> (factory, module probed for availability; None = always available)
_FACTORIES: Dict[str, Tuple[Callable[[], ArrayBackend], Optional[str]]] = {
    "numpy": (_numpy_factory, None),
    "cupy": (_cupy_factory, "cupy"),
    "torch": (_torch_factory, "torch"),
}
_INSTANCES: Dict[str, ArrayBackend] = {}
#: Names whose factory raised BackendUnavailable (e.g. the CuPy wheel is
#: installed but no CUDA device is reachable).  Availability reporting
#: downgrades these so a name is never listed as installed after it has
#: demonstrably failed to construct.
_CONSTRUCTION_FAILED: Dict[str, str] = {}
_LOCK = threading.Lock()

#: The in-tree backends, in "auto" preference order after NumPy.  This tuple
#: is intentionally *static* (CLI choice lists, cost models and docs key off
#: it); the live registry — built-ins plus anything added via
#: :func:`register_backend` — is :func:`known_array_backends`.
KNOWN_ARRAY_BACKENDS: Tuple[str, ...] = ("numpy", "cupy", "torch")


def known_array_backends() -> Tuple[str, ...]:
    """Every backend name the registry can currently build (built-ins first,
    then registration order)."""
    with _LOCK:
        return tuple(_FACTORIES)


def backend_module(name: str) -> Optional[str]:
    """The optional-library module a backend depends on (``None`` = none)."""
    entry = _FACTORIES.get(name)
    return None if entry is None else entry[1]


def _invalidate_dispatch_cache() -> None:
    # Local import: dispatch imports this module, so the dependency must stay
    # one-way at import time.
    from repro.backend.dispatch import clear_dispatch_cache

    clear_dispatch_cache()


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], module: Optional[str] = None
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``module`` names the import the backend depends on; ``None`` marks it
    always-available.  Replacing an existing name drops its cached instance
    and the type-dispatch cache, so ``backend_of`` cannot keep handing out
    the replaced instance.
    """
    with _LOCK:
        _FACTORIES[name] = (factory, module)
        _INSTANCES.pop(name, None)
        _CONSTRUCTION_FAILED.pop(name, None)
    _invalidate_dispatch_cache()


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for test cleanup)."""
    if name in KNOWN_ARRAY_BACKENDS:
        raise ValueError(f"the in-tree backend {name!r} cannot be unregistered")
    with _LOCK:
        _FACTORIES.pop(name, None)
        _INSTANCES.pop(name, None)
        _CONSTRUCTION_FAILED.pop(name, None)
    _invalidate_dispatch_cache()


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its library is importable.

    Importability is checked with ``find_spec`` (cheap, no import), which is
    necessary but not always sufficient — the CuPy factory additionally
    probes for a reachable CUDA device at construction.  A name whose factory
    has already failed with :class:`BackendUnavailable` is reported
    unavailable from then on, so lists self-correct after the first attempt.
    """
    entry = _FACTORIES.get(name)
    if entry is None:
        return False
    with _LOCK:
        if name in _CONSTRUCTION_FAILED:
            return False
    _factory, module = entry
    if module is None:
        return True
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic import state
        return False


def available_array_backends() -> Tuple[str, ...]:
    """Registered backends whose library is importable on this machine."""
    return tuple(name for name in known_array_backends() if backend_available(name))


def _unknown_name_error(name: str) -> ValueError:
    return ValueError(
        f"unknown array backend {name!r}; known backends: "
        f"{', '.join(known_array_backends())} (plus 'auto'); installed here: "
        f"{', '.join(available_array_backends())}"
    )


def resolve_backend_name(name: str) -> str:
    """Canonicalise a backend name without constructing the backend.

    ``"auto"`` resolves to the name :func:`get_backend` would pick.  Raises
    :class:`ValueError` for unknown names and
    :class:`~repro.backend.base.BackendUnavailable` for known names whose
    library is missing — both listing known vs. installed backends.
    """
    if name == "auto":
        return _auto_backend_name()
    if name not in _FACTORIES:
        raise _unknown_name_error(name)
    if not backend_available(name):
        raise BackendUnavailable(
            f"array backend {name!r} is known but its library is not installed; "
            f"installed backends: {', '.join(available_array_backends())}"
        )
    return name


def _device_backend_usable(name: str) -> bool:
    """Whether a device backend can actually reach a device (for ``auto``)."""
    if not backend_available(name):
        return False
    try:
        backend = get_backend(name)
    except BackendUnavailable:  # pragma: no cover - lost a race with uninstall
        return False
    return backend.device_kind != "cpu"


def _auto_backend_name() -> str:
    for name in known_array_backends():
        if name == "numpy":
            continue
        if _device_backend_usable(name):  # pragma: no cover - needs a GPU
            return name
    return "numpy"


def get_backend(name: str = "auto") -> ArrayBackend:
    """Resolve ``name`` to a (cached, shared) :class:`ArrayBackend` instance.

    ``"auto"`` prefers an importable device backend with a reachable GPU and
    otherwise returns the NumPy reference — with only NumPy installed,
    ``get_backend("auto") is get_backend("numpy")``.
    """
    if name == "auto":
        name = _auto_backend_name()
    entry = _FACTORIES.get(name)
    if entry is None:
        raise _unknown_name_error(name)
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            factory, _module = entry
            try:
                instance = factory()
            except BackendUnavailable as exc:
                # Remember the failure so availability reporting stops
                # listing a backend that cannot actually construct here.
                _CONSTRUCTION_FAILED[name] = str(exc)
                raise
            _CONSTRUCTION_FAILED.pop(name, None)
            _INSTANCES[name] = instance
        return instance

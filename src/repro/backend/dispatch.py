"""Array-type dispatch: from an array to the backend that owns it.

The generic kernels receive raw arrays, not backend handles, so they resolve
the owning backend from the array's *type*: :func:`backend_of` keys a cache
on ``type(array)`` and :func:`namespace_of` is the one-liner kernels put at
the top (``xp = namespace_of(x)``).

Resolution never imports an optional library the process has not already
imported: a ``torch.Tensor`` can only exist if ``torch`` is in
``sys.modules``, so probing is gated on that — on a NumPy-only host the fast
path is a single dict hit on ``type(ndarray)``.

Python scalars, lists and NumPy scalars fall through to the NumPy reference
backend, matching how the historical ``np.asarray``-everywhere code treated
them.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

import numpy as np

from repro.backend.base import ArrayBackend, BackendUnavailable
from repro.backend.registry import backend_module, get_backend, known_array_backends

__all__ = ["backend_of", "namespace_of", "clear_dispatch_cache"]

_TYPE_CACHE: Dict[type, ArrayBackend] = {}


def clear_dispatch_cache() -> None:
    """Drop the type->backend cache (needed after re-registering backends)."""
    _TYPE_CACHE.clear()


def backend_of(array: Any) -> ArrayBackend:
    """The :class:`ArrayBackend` that natively owns ``array``."""
    backend = _TYPE_CACHE.get(type(array))
    if backend is not None:
        return backend
    return _resolve_slow(array)


def namespace_of(array: Any) -> Any:
    """The function namespace (``xp``) of the backend owning ``array``.

    Routed through :meth:`~repro.backend.base.ArrayBackend.namespace_for`, so
    device-aware backends hand back a namespace bound to the array's own
    device: creation functions inside the kernels follow their input instead
    of the backend's default device.
    """
    return backend_of(array).namespace_for(array)


def _resolve_slow(array: Any) -> ArrayBackend:
    # Exact-type check: ndarray *subclasses* may be the native type of a
    # registered wrapper backend (the test suite's simulated-foreign arrays),
    # so only the base class takes the NumPy fast path unprobed.
    if type(array) is np.ndarray or isinstance(array, np.generic):
        backend = get_backend("numpy")
    else:
        backend = _probe_optional_backends(array)
        if backend is None:
            # Python scalars / sequences / unclaimed ndarray subclasses: the
            # NumPy reference adopts them.
            backend = get_backend("numpy")
    _TYPE_CACHE[type(array)] = backend
    return backend


def _probe_optional_backends(array: Any) -> Any:
    for name in known_array_backends():
        # The registry records each backend's optional-library module; only
        # probe a backend whose library the process has already imported (an
        # array of its type cannot exist otherwise).
        module = backend_module(name)
        probe_gated = module is not None and module not in sys.modules
        if name == "numpy" or probe_gated:
            continue
        try:
            backend = get_backend(name)
        except BackendUnavailable:  # registered but not importable
            continue
        if backend.is_backend_array(array):
            return backend
    return None

"""Fault injection into attention GEMM outputs.

Faithful to the paper's methodology (Section 5.1, *Fault Injection*): faults
are injected via instrumentation into the *result matrix* of a GEMM, at a
randomly selected position, simulating a transient fault that occurred during
the computation.

* **INF** and **NaN** are injected by assignment;
* **near-INF** is injected by flipping the most significant exponent bit of
  the selected element — performed *in place* on the GEMM output buffer by
  viewing it through the owning array backend's integer dtype
  (:func:`repro.utils.floatbits.flip_exponent_msb_inplace`), so a
  device-resident CuPy/Torch output is corrupted without a host round-trip;
* **numeric** (a moderate value change) is provided additionally, to exercise
  the classic-ABFT code path and the benign-fault behaviour the prior work
  observed.

The flip-based fault family (``error_type="near_inf"``) is parameterised by
``flip_kind``, widening the paper's exponent-MSB model to the fuller
bit-upset taxonomy of "Why Attention Fails" and the ECC MBU patterns:
``"exponent_msb"`` (default — the paper's flip, bit-for-bit historical),
``"mantissa_lsb"`` (a ULP-sized, almost always benign upset),
``"adjacent_double_bit"`` (an MBU across the top two exponent bits) and
``"stuck_zero"`` (a stuck-at-0 cell).  Injections are counted per kind so
campaigns can report detection/correction rates for each mechanism.

Injectable targets cover the whole protected block set: the six attention
matrices plus the FFN boundaries ``H`` (``x·W_up``) and ``FO``
(``h·W_down``) once the model's feed-forward layers are instrumented.

The injector is an :class:`repro.nn.AttentionHooks`; register it *before* the
:class:`repro.core.ATTNChecker` so the checker sees the corrupted output,
exactly like a fault striking the kernel before ABFT detection runs.
"""

from __future__ import annotations

import enum
import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of
from repro.nn.attention import (
    AttentionHooks,
    AttentionOp,
    FeedForwardOp,
    GemmContext,
)
from repro.utils.floatbits import (
    FLIP_KINDS,
    NEAR_INF_MINIMUM_MAGNITUDE,
    apply_flip_kind,
    flip_exponent_msb,
    flip_exponent_msb_inplace,
    make_near_inf,
    near_inf_fallback,
)
from repro.utils.rng import new_rng

__all__ = [
    "ERROR_TYPES",
    "FLIP_KINDS",
    "TARGET_MATRICES",
    "FaultSpec",
    "InjectionRecord",
    "FaultInjector",
    "corrupt_scalar",
    "CollectiveFaultSpec",
    "CollectiveInjectionRecord",
    "CollectiveFaultInjector",
]

#: Error classes supported by the injector.
ERROR_TYPES: Tuple[str, ...] = ("inf", "nan", "near_inf", "numeric")

#: Injectable matrices and the GEMM that produces each of them: the paper's
#: Table 2 / Table 4 attention rows plus the FFN section boundaries of the
#: whole-model protection extension.
TARGET_MATRICES: Dict[str, enum.Enum] = {
    "Q": AttentionOp.XQ,
    "K": AttentionOp.XK,
    "V": AttentionOp.XV,
    "AS": AttentionOp.QK,
    "CL": AttentionOp.APV,
    "O": AttentionOp.CLO,
    "H": FeedForwardOp.UP,
    "FO": FeedForwardOp.DOWN,
}


@dataclass
class FaultSpec:
    """Description of one fault to inject.

    Attributes
    ----------
    matrix:
        Target matrix name (``"Q"``, ``"K"``, ``"V"``, ``"AS"``, ``"CL"``,
        ``"O"``, ``"H"``, ``"FO"``).
    error_type:
        ``"inf"``, ``"nan"``, ``"near_inf"`` or ``"numeric"``.
    layer_index:
        Attention layer to target (``None`` = first layer that executes).
    position:
        Flat index into the GEMM output to corrupt (``None`` = random).
    sign:
        Sign of injected INF (+1 / -1).
    numeric_delta:
        Magnitude added for ``"numeric"`` errors.
    flip_kind:
        Bit-level mechanism for the flip-based fault family
        (``error_type="near_inf"``): one of
        :data:`repro.utils.floatbits.FLIP_KINDS`.  The default
        ``"exponent_msb"`` is the paper's flip and reproduces the historical
        injector bit-for-bit; the other kinds produce whatever value the
        flipped bit pattern encodes (no near-INF floor is enforced — a
        mantissa-LSB upset is *supposed* to be benign).  Assignment-based
        error types require the default kind.
    """

    matrix: str
    error_type: str
    layer_index: Optional[int] = 0
    position: Optional[Tuple[int, ...]] = None
    sign: int = 1
    numeric_delta: float = 10.0
    flip_kind: str = "exponent_msb"

    def __post_init__(self) -> None:
        if self.matrix not in TARGET_MATRICES:
            raise KeyError(f"unknown target matrix {self.matrix!r}; expected one of {sorted(TARGET_MATRICES)}")
        if self.error_type not in ERROR_TYPES:
            raise KeyError(f"unknown error type {self.error_type!r}; expected one of {ERROR_TYPES}")
        if self.flip_kind not in FLIP_KINDS:
            raise KeyError(f"unknown flip kind {self.flip_kind!r}; expected one of {FLIP_KINDS}")
        if self.flip_kind != "exponent_msb" and self.error_type != "near_inf":
            raise ValueError(
                f"flip_kind {self.flip_kind!r} applies to the flip-based fault family "
                f"(error_type='near_inf'); {self.error_type!r} faults are injected by "
                "assignment and take no flip kind"
            )

    @property
    def op(self) -> enum.Enum:
        return TARGET_MATRICES[self.matrix]


def corrupt_scalar(
    error_type: str,
    original: float,
    dtype: np.dtype,
    sign: int = 1,
    numeric_delta: float = 10.0,
) -> float:
    """The corrupted replacement value for one scalar, per the paper's method.

    Shared by the attention-GEMM injector (host-scalar path) and the
    collective injector, so both campaigns inject identically-shaped errors.
    """
    if error_type == "inf":
        return float(np.inf if sign >= 0 else -np.inf)
    if error_type == "nan":
        return float(np.nan)
    if error_type == "near_inf":
        # Flip the most significant exponent bit in the arithmetic the
        # computation uses (see the near-INF discussion on FaultInjector).
        flip_dtype = (
            dtype
            if np.dtype(dtype) in (np.dtype(np.float32), np.dtype(np.float64))
            else np.float64
        )
        base = original if original != 0.0 and np.isfinite(original) else 1.0
        value = float(np.asarray(make_near_inf(base, dtype=flip_dtype)))
        return float(sign) * abs(value) if sign < 0 else value
    if error_type == "numeric":
        return float(original + sign * numeric_delta)
    raise KeyError(error_type)


@dataclass
class InjectionRecord:
    """Book-keeping of one performed injection."""

    spec: FaultSpec
    layer_index: int
    step: int
    position: Tuple[int, ...]
    original_value: float
    injected_value: float
    #: Bit-level mechanism that produced ``injected_value`` (the spec's
    #: ``flip_kind`` for flip-based faults, ``"exponent_msb"`` otherwise).
    flip_kind: str = "exponent_msb"
    #: Serving attribution: the request (batch/trial) identifier announced by
    #: the most recent :meth:`FaultInjector.begin_request`, ``None`` outside
    #: a request scope.
    request_id: Optional[object] = None
    #: Data-parallel attribution: the worker rank this injector was spawned
    #: for (:meth:`FaultInjector.spawn`), ``None`` on an unspawned injector.
    rank: Optional[int] = None


class FaultInjector(AttentionHooks):
    """Inject the faults described by one or more :class:`FaultSpec`.

    Parameters
    ----------
    specs:
        Faults to inject.  Each spec fires at most ``max_injections_per_spec``
        times (default once), so a typical campaign arms a fresh injector per
        trial.
    rng:
        Random generator for position selection.
    enabled:
        Start armed or disarmed.
    max_records:
        Retention bound on :attr:`records`.  The injector keeps the most
        recent ``max_records`` :class:`InjectionRecord` entries (older ones
        are evicted FIFO), so a long serving campaign that never resets the
        injector holds bounded memory; :attr:`num_injections` stays the
        *total* performed count regardless of eviction.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        rng: Optional[np.random.Generator] = None,
        max_injections_per_spec: int = 1,
        enabled: bool = True,
        value_dtype: Optional[np.dtype] = None,
        max_records: int = 1024,
        seed: Optional[int] = None,
        rank: Optional[int] = None,
    ) -> None:
        """``value_dtype`` overrides the floating format whose exponent layout
        the near-INF bit flip uses; by default the output array's own dtype is
        used.  Set it to ``numpy.float32`` when combining the injector with
        :class:`repro.faults.PrecisionSimulationHooks` so the injected
        magnitude matches the simulated training precision.

        ``seed`` makes the injector *spawnable*: :meth:`spawn` derives
        per-rank children whose position streams come from
        ``SeedSequence(seed, spawn_key=(rank,))`` — deterministic and
        rank-attributable no matter how worker threads interleave.  ``rng``
        and ``seed`` are mutually exclusive."""
        if not isinstance(max_records, int) or max_records < 1:
            raise ValueError(f"max_records must be a positive integer, got {max_records!r}")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        if rng is None:
            rng = new_rng() if seed is None else np.random.default_rng(np.random.SeedSequence(seed))
        self.specs: List[FaultSpec] = list(specs)
        self.rng = rng
        self.seed = seed
        self.rank = rank
        self.max_injections_per_spec = max_injections_per_spec
        self.enabled = enabled
        self.value_dtype = np.dtype(value_dtype) if value_dtype is not None else None
        self.max_records = max_records
        self.records: Deque[InjectionRecord] = deque(maxlen=max_records)
        self.total_injections = 0
        #: Total injections performed per bit-level mechanism (monotonic,
        #: like :attr:`num_injections`; cleared only by :meth:`reset`).
        self.injections_by_kind: Dict[str, int] = {kind: 0 for kind in FLIP_KINDS}
        self._request_id: Optional[object] = None
        self._fired_count: Dict[int, int] = {i: 0 for i in range(len(self.specs))}

    def spawn(self, rank: int) -> "FaultInjector":
        """Derive the deterministic per-rank child injector for ``rank``.

        The child shares this injector's specs and knobs but owns a private
        position stream derived via ``SeedSequence(seed, spawn_key=(rank,))``,
        and tags every record with ``rank`` — identical campaigns replay
        identically for any worker count, and every injection is
        rank-attributable.  Requires a ``seed``-constructed parent.
        """
        if self.seed is None:
            raise ValueError(
                "spawn() needs a seed-constructed injector (FaultInjector(..., seed=...)); "
                "an explicit-rng injector has no derivable per-rank streams"
            )
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        return FaultInjector(
            self.specs,
            rng=np.random.default_rng(np.random.SeedSequence(self.seed, spawn_key=(rank,))),
            max_injections_per_spec=self.max_injections_per_spec,
            enabled=self.enabled,
            value_dtype=self.value_dtype,
            max_records=self.max_records,
            rank=rank,
        )

    # -- control ---------------------------------------------------------------------

    def arm(self) -> None:
        """(Re-)enable injection and reset the per-spec firing counters."""
        self.enabled = True
        self._fired_count = {i: 0 for i in range(len(self.specs))}

    def disarm(self) -> None:
        self.enabled = False

    def begin_request(self, request_id: Optional[object] = None) -> None:
        """Open a per-request injection scope (the serving lifecycle seam).

        Re-arms the per-spec firing counters — so a spec configured to fire
        once does so once *per request*, instead of carrying a stale
        already-fired state (or a half-spent budget) from the previous
        request — and tags every subsequent :class:`InjectionRecord` with
        ``request_id`` for per-request fault attribution.  Retained records
        and the armed/disarmed state are left untouched.
        """
        self._request_id = request_id
        self._fired_count = {i: 0 for i in range(len(self.specs))}

    def reset(self) -> None:
        self.records.clear()
        self.total_injections = 0
        self.injections_by_kind = {kind: 0 for kind in FLIP_KINDS}
        self._request_id = None
        self.arm()

    @property
    def num_injections(self) -> int:
        """Total injections performed — monotonic, unaffected by the
        ``max_records`` eviction of old :attr:`records` entries."""
        return self.total_injections

    # -- corruption --------------------------------------------------------------------

    def _corrupt_value(self, spec: FaultSpec, original: float, dtype: np.dtype) -> float:
        # The paper's method for near-INF: flip the most significant exponent
        # bit of the selected element, *in the arithmetic the computation
        # uses*.  On the paper's fp32 GPU training that lands a value within a
        # couple of orders of magnitude of the overflow threshold, which is
        # what makes near-INF faults accumulate into INF/NaN downstream; the
        # same relationship is preserved here by flipping in the output's own
        # dtype (float64 for the NumPy substrate).
        return corrupt_scalar(
            spec.error_type, original, dtype, sign=spec.sign, numeric_delta=spec.numeric_delta
        )

    def _inject_near_inf_inplace(self, spec: FaultSpec, out, position, original: float) -> Optional[float]:
        """Flip the exponent MSB of ``out[position]`` on its own buffer.

        Returns the injected value, or ``None`` when the in-place path does
        not apply (dtype override requested, non-flippable dtype, or a
        zero / non-finite original where the paper's method falls back to a
        representative near-INF constant) — the caller then uses the host
        scalar path, which computes the identical value by construction.
        """
        if self.value_dtype is not None:
            return None
        if original == 0.0 or not np.isfinite(original):
            return None
        backend = backend_of(out)
        dtype = backend.dtype_of(out)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            return None
        flip_exponent_msb_inplace(out, position, backend=backend)
        value = float(out[position])
        # Same fallback rule as make_near_inf (shared constants): a flip that
        # shrank the value is replaced by a representative near-INF constant
        # so campaigns always inject a genuine extreme.
        if not np.isfinite(value) or abs(value) < NEAR_INF_MINIMUM_MAGNITUDE or value == 0.0:
            out[position] = math.copysign(near_inf_fallback(dtype), original)
        if spec.sign < 0:
            out[position] = -abs(float(out[position]))
        return float(out[position])

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return out
        for index, spec in enumerate(self.specs):
            if self._fired_count[index] >= self.max_injections_per_spec:
                continue
            if spec.op is not ctx.op:
                continue
            if spec.layer_index is not None and spec.layer_index != ctx.layer_index:
                continue
            if spec.position is not None:
                position = tuple(spec.position)
            else:
                flat = int(self.rng.integers(0, math.prod(out.shape)))
                position = tuple(int(i) for i in np.unravel_index(flat, tuple(out.shape)))
            original = float(out[position])
            injected = None
            if spec.error_type == "near_inf" and spec.flip_kind == "exponent_msb":
                injected = self._inject_near_inf_inplace(spec, out, position, original)
            if injected is None:
                dtype = self.value_dtype or backend_of(out).dtype_of(out)
                if spec.error_type == "near_inf" and spec.flip_kind != "exponent_msb":
                    # Widened flip taxonomy: inject the value the flipped bit
                    # pattern encodes, with no near-INF floor — a mantissa-LSB
                    # or stuck-at-zero upset is supposed to be mild/benign.
                    flip_dtype = (
                        dtype
                        if np.dtype(dtype) in (np.dtype(np.float32), np.dtype(np.float64))
                        else np.float64
                    )
                    injected = float(apply_flip_kind(spec.flip_kind, original, dtype=flip_dtype))
                else:
                    injected = self._corrupt_value(spec, original, dtype)
                out[position] = injected
            self._fired_count[index] += 1
            self.total_injections += 1
            self.injections_by_kind[spec.flip_kind] += 1
            self.records.append(
                InjectionRecord(
                    spec=spec,
                    layer_index=ctx.layer_index,
                    step=ctx.step,
                    position=position,
                    original_value=original,
                    injected_value=injected,
                    flip_kind=spec.flip_kind,
                    request_id=self._request_id,
                    rank=self.rank,
                )
            )
        return out


@dataclass
class CollectiveFaultSpec:
    """One fault to inject into a rank's all-reduce contribution.

    The corruption strikes the deposited *send buffer* of the targeted rank —
    after the sender computed its gradient checksums, before the reduction —
    which is exactly the in-or-between-collective-steps window the
    checksum-linearity invariant of
    :class:`repro.comm.ProtectedCollective` covers.

    Attributes
    ----------
    step:
        Training step (1-based, as announced by
        :meth:`CollectiveFaultInjector.begin_step`) at which to strike.
    rank:
        Contributing rank whose deposited payload is corrupted.
    array_index:
        Which gradient tensor of the contribution (``None`` = random).
    position:
        Flat index into the chosen tensor (``None`` = random).
    error_type / sign / numeric_delta:
        Same error classes as :class:`FaultSpec`.
    key_contains:
        Optional substring the rendezvous key must contain for the spec to
        fire.  The bucketed trainer contributes under one key per bucket
        (``step{N}/bucket{k}``) plus a loss key, so a spec with
        ``key_contains="bucket2"`` strikes exactly that bucket's send buffer
        — the lever the bucket-granular retry tests use.  ``None`` keeps the
        unbucketed behaviour: fire on the rank's first contribution of the
        step.
    """

    step: int
    rank: int
    array_index: Optional[int] = None
    position: Optional[int] = None
    error_type: str = "near_inf"
    sign: int = 1
    numeric_delta: float = 10.0
    key_contains: Optional[str] = None

    def __post_init__(self) -> None:
        if self.error_type not in ERROR_TYPES:
            raise KeyError(
                f"unknown error type {self.error_type!r}; expected one of {ERROR_TYPES}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")


@dataclass
class CollectiveInjectionRecord:
    """Book-keeping of one performed collective injection."""

    spec: CollectiveFaultSpec
    step: int
    rank: int
    key: str
    array_index: int
    position: Tuple[int, ...]
    original_value: float
    injected_value: float


class CollectiveFaultInjector:
    """Deterministic per-rank fault injection into collective contributions.

    Plugs into :class:`repro.comm.ThreadCollective`'s ``fault_hook`` seam
    (``hook(key, rank, arrays)``, invoked on the deposited copy of each
    contribution).  Each rank draws positions from its own generator, derived
    via ``SeedSequence(seed, spawn_key=(rank,))`` — the same spawning scheme
    as :meth:`FaultInjector.spawn` — so a campaign replays identically for
    any worker count and every record is rank-attributed.

    Each spec fires at most once, and only on the primary attempt of its step
    (re-executed reductions use ``...#retryN`` keys and are left clean,
    modelling a transient fault).
    """

    def __init__(self, specs: Sequence[CollectiveFaultSpec], seed: int = 0,
                 enabled: bool = True) -> None:
        self.specs: List[CollectiveFaultSpec] = list(specs)
        self.seed = int(seed)
        self.enabled = enabled
        self.records: List[CollectiveInjectionRecord] = []
        self._rngs: Dict[int, np.random.Generator] = {}
        self._lock = threading.Lock()
        # Guarded by _lock: hooks run concurrently on worker threads.
        self._step = 0
        self._fired: Dict[int, bool] = {i: False for i in range(len(self.specs))}

    def begin_step(self, step: int) -> None:
        """Announce the training step the next contributions belong to."""
        with self._lock:
            self._step = int(step)

    def _rng_for(self, rank: int) -> np.random.Generator:
        rng = self._rngs.get(rank)
        if rng is None:
            rng = np.random.default_rng(np.random.SeedSequence(self.seed, spawn_key=(rank,)))
            self._rngs[rank] = rng
        return rng

    @property
    def num_injections(self) -> int:
        return len(self.records)

    def __call__(self, key: str, rank: int, arrays: List[Any]) -> None:
        if not self.enabled or "#retry" in key:
            return
        with self._lock:
            step = self._step
            due = [
                (i, spec)
                for i, spec in enumerate(self.specs)
                if not self._fired[i]
                and spec.step == step
                and spec.rank == rank
                and (spec.key_contains is None or spec.key_contains in key)
            ]
            for i, _ in due:
                self._fired[i] = True
        for _, spec in due:
            rng = self._rng_for(rank)
            array_index = (
                spec.array_index
                if spec.array_index is not None
                else int(rng.integers(0, len(arrays)))
            )
            target = arrays[array_index]
            size = math.prod(target.shape)
            flat = (
                spec.position
                if spec.position is not None
                else int(rng.integers(0, size))
            )
            position = tuple(int(i) for i in np.unravel_index(flat, tuple(target.shape)))
            original = float(target[position])
            dtype = backend_of(target).dtype_of(target)
            injected = corrupt_scalar(
                spec.error_type, original, dtype,
                sign=spec.sign, numeric_delta=spec.numeric_delta,
            )
            target[position] = injected
            record = CollectiveInjectionRecord(
                spec=spec, step=step, rank=rank, key=key,
                array_index=array_index, position=position,
                original_value=original, injected_value=injected,
            )
            with self._lock:
                self.records.append(record)

"""Fault injection into attention GEMM outputs.

Faithful to the paper's methodology (Section 5.1, *Fault Injection*): faults
are injected via instrumentation into the *result matrix* of a GEMM, at a
randomly selected position, simulating a transient fault that occurred during
the computation.

* **INF** and **NaN** are injected by assignment;
* **near-INF** is injected by flipping the most significant exponent bit of
  the selected element — performed *in place* on the GEMM output buffer by
  viewing it through the owning array backend's integer dtype
  (:func:`repro.utils.floatbits.flip_exponent_msb_inplace`), so a
  device-resident CuPy/Torch output is corrupted without a host round-trip;
* **numeric** (a moderate value change) is provided additionally, to exercise
  the classic-ABFT code path and the benign-fault behaviour the prior work
  observed.

The injector is an :class:`repro.nn.AttentionHooks`; register it *before* the
:class:`repro.core.ATTNChecker` so the checker sees the corrupted output,
exactly like a fault striking the kernel before ABFT detection runs.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of
from repro.nn.attention import AttentionHooks, AttentionOp, GemmContext
from repro.utils.floatbits import (
    NEAR_INF_MINIMUM_MAGNITUDE,
    flip_exponent_msb,
    flip_exponent_msb_inplace,
    make_near_inf,
    near_inf_fallback,
)
from repro.utils.rng import new_rng

__all__ = ["ERROR_TYPES", "TARGET_MATRICES", "FaultSpec", "InjectionRecord", "FaultInjector"]

#: Error classes supported by the injector.
ERROR_TYPES: Tuple[str, ...] = ("inf", "nan", "near_inf", "numeric")

#: Injectable matrices (the paper's Table 2 / Table 4 rows) and the GEMM that
#: produces each of them.
TARGET_MATRICES: Dict[str, AttentionOp] = {
    "Q": AttentionOp.XQ,
    "K": AttentionOp.XK,
    "V": AttentionOp.XV,
    "AS": AttentionOp.QK,
    "CL": AttentionOp.APV,
    "O": AttentionOp.CLO,
}


@dataclass
class FaultSpec:
    """Description of one fault to inject.

    Attributes
    ----------
    matrix:
        Target matrix name (``"Q"``, ``"K"``, ``"V"``, ``"AS"``, ``"CL"``,
        ``"O"``).
    error_type:
        ``"inf"``, ``"nan"``, ``"near_inf"`` or ``"numeric"``.
    layer_index:
        Attention layer to target (``None`` = first layer that executes).
    position:
        Flat index into the GEMM output to corrupt (``None`` = random).
    sign:
        Sign of injected INF (+1 / -1).
    numeric_delta:
        Magnitude added for ``"numeric"`` errors.
    """

    matrix: str
    error_type: str
    layer_index: Optional[int] = 0
    position: Optional[Tuple[int, ...]] = None
    sign: int = 1
    numeric_delta: float = 10.0

    def __post_init__(self) -> None:
        if self.matrix not in TARGET_MATRICES:
            raise KeyError(f"unknown target matrix {self.matrix!r}; expected one of {sorted(TARGET_MATRICES)}")
        if self.error_type not in ERROR_TYPES:
            raise KeyError(f"unknown error type {self.error_type!r}; expected one of {ERROR_TYPES}")

    @property
    def op(self) -> AttentionOp:
        return TARGET_MATRICES[self.matrix]


@dataclass
class InjectionRecord:
    """Book-keeping of one performed injection."""

    spec: FaultSpec
    layer_index: int
    step: int
    position: Tuple[int, ...]
    original_value: float
    injected_value: float
    #: Serving attribution: the request (batch/trial) identifier announced by
    #: the most recent :meth:`FaultInjector.begin_request`, ``None`` outside
    #: a request scope.
    request_id: Optional[object] = None


class FaultInjector(AttentionHooks):
    """Inject the faults described by one or more :class:`FaultSpec`.

    Parameters
    ----------
    specs:
        Faults to inject.  Each spec fires at most ``max_injections_per_spec``
        times (default once), so a typical campaign arms a fresh injector per
        trial.
    rng:
        Random generator for position selection.
    enabled:
        Start armed or disarmed.
    max_records:
        Retention bound on :attr:`records`.  The injector keeps the most
        recent ``max_records`` :class:`InjectionRecord` entries (older ones
        are evicted FIFO), so a long serving campaign that never resets the
        injector holds bounded memory; :attr:`num_injections` stays the
        *total* performed count regardless of eviction.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        rng: Optional[np.random.Generator] = None,
        max_injections_per_spec: int = 1,
        enabled: bool = True,
        value_dtype: Optional[np.dtype] = None,
        max_records: int = 1024,
    ) -> None:
        """``value_dtype`` overrides the floating format whose exponent layout
        the near-INF bit flip uses; by default the output array's own dtype is
        used.  Set it to ``numpy.float32`` when combining the injector with
        :class:`repro.faults.PrecisionSimulationHooks` so the injected
        magnitude matches the simulated training precision."""
        if not isinstance(max_records, int) or max_records < 1:
            raise ValueError(f"max_records must be a positive integer, got {max_records!r}")
        self.specs: List[FaultSpec] = list(specs)
        self.rng = rng if rng is not None else new_rng()
        self.max_injections_per_spec = max_injections_per_spec
        self.enabled = enabled
        self.value_dtype = np.dtype(value_dtype) if value_dtype is not None else None
        self.max_records = max_records
        self.records: Deque[InjectionRecord] = deque(maxlen=max_records)
        self.total_injections = 0
        self._request_id: Optional[object] = None
        self._fired_count: Dict[int, int] = {i: 0 for i in range(len(self.specs))}

    # -- control ---------------------------------------------------------------------

    def arm(self) -> None:
        """(Re-)enable injection and reset the per-spec firing counters."""
        self.enabled = True
        self._fired_count = {i: 0 for i in range(len(self.specs))}

    def disarm(self) -> None:
        self.enabled = False

    def begin_request(self, request_id: Optional[object] = None) -> None:
        """Open a per-request injection scope (the serving lifecycle seam).

        Re-arms the per-spec firing counters — so a spec configured to fire
        once does so once *per request*, instead of carrying a stale
        already-fired state (or a half-spent budget) from the previous
        request — and tags every subsequent :class:`InjectionRecord` with
        ``request_id`` for per-request fault attribution.  Retained records
        and the armed/disarmed state are left untouched.
        """
        self._request_id = request_id
        self._fired_count = {i: 0 for i in range(len(self.specs))}

    def reset(self) -> None:
        self.records.clear()
        self.total_injections = 0
        self._request_id = None
        self.arm()

    @property
    def num_injections(self) -> int:
        """Total injections performed — monotonic, unaffected by the
        ``max_records`` eviction of old :attr:`records` entries."""
        return self.total_injections

    # -- corruption --------------------------------------------------------------------

    def _corrupt_value(self, spec: FaultSpec, original: float, dtype: np.dtype) -> float:
        if spec.error_type == "inf":
            return float(np.inf if spec.sign >= 0 else -np.inf)
        if spec.error_type == "nan":
            return float(np.nan)
        if spec.error_type == "near_inf":
            # The paper's method: flip the most significant exponent bit of the
            # selected element, *in the arithmetic the computation uses*.  On
            # the paper's fp32 GPU training that lands a value within a couple
            # of orders of magnitude of the overflow threshold, which is what
            # makes near-INF faults accumulate into INF/NaN downstream; the
            # same relationship is preserved here by flipping in the output's
            # own dtype (float64 for the NumPy substrate).
            flip_dtype = dtype if np.dtype(dtype) in (np.dtype(np.float32), np.dtype(np.float64)) else np.float64
            base = original if original != 0.0 and np.isfinite(original) else 1.0
            value = float(np.asarray(make_near_inf(base, dtype=flip_dtype)))
            return float(spec.sign) * abs(value) if spec.sign < 0 else value
        if spec.error_type == "numeric":
            return float(original + spec.sign * spec.numeric_delta)
        raise KeyError(spec.error_type)

    def _inject_near_inf_inplace(self, spec: FaultSpec, out, position, original: float) -> Optional[float]:
        """Flip the exponent MSB of ``out[position]`` on its own buffer.

        Returns the injected value, or ``None`` when the in-place path does
        not apply (dtype override requested, non-flippable dtype, or a
        zero / non-finite original where the paper's method falls back to a
        representative near-INF constant) — the caller then uses the host
        scalar path, which computes the identical value by construction.
        """
        if self.value_dtype is not None:
            return None
        if original == 0.0 or not np.isfinite(original):
            return None
        backend = backend_of(out)
        dtype = backend.dtype_of(out)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            return None
        flip_exponent_msb_inplace(out, position, backend=backend)
        value = float(out[position])
        # Same fallback rule as make_near_inf (shared constants): a flip that
        # shrank the value is replaced by a representative near-INF constant
        # so campaigns always inject a genuine extreme.
        if not np.isfinite(value) or abs(value) < NEAR_INF_MINIMUM_MAGNITUDE or value == 0.0:
            out[position] = math.copysign(near_inf_fallback(dtype), original)
        if spec.sign < 0:
            out[position] = -abs(float(out[position]))
        return float(out[position])

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return out
        for index, spec in enumerate(self.specs):
            if self._fired_count[index] >= self.max_injections_per_spec:
                continue
            if spec.op is not ctx.op:
                continue
            if spec.layer_index is not None and spec.layer_index != ctx.layer_index:
                continue
            if spec.position is not None:
                position = tuple(spec.position)
            else:
                flat = int(self.rng.integers(0, math.prod(out.shape)))
                position = tuple(int(i) for i in np.unravel_index(flat, tuple(out.shape)))
            original = float(out[position])
            injected = None
            if spec.error_type == "near_inf":
                injected = self._inject_near_inf_inplace(spec, out, position, original)
            if injected is None:
                dtype = self.value_dtype or backend_of(out).dtype_of(out)
                injected = self._corrupt_value(spec, original, dtype)
                out[position] = injected
            self._fired_count[index] += 1
            self.total_injections += 1
            self.records.append(
                InjectionRecord(
                    spec=spec,
                    layer_index=ctx.layer_index,
                    step=ctx.step,
                    position=position,
                    original_value=original,
                    injected_value=injected,
                    request_id=self._request_id,
                )
            )
        return out

"""Detection / correction campaigns with ATTNChecker enabled (Section 5.2).

A campaign injects one extreme error per forward execution at a random
position of a chosen matrix, with ATTNChecker attached, and verifies that

1. the checker *detected* an inconsistency,
2. the checker *corrected* it (no extreme value survives), and
3. the protected forward output matches the fault-free reference execution to
   within floating-point tolerance — i.e. the corrupted value was restored to
   its original value, the paper's success criterion.

The paper reports a 100% detection and correction rate across all extreme
errors on four LLMs; the same campaign here reproduces that claim on the tiny
model configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.attention_checker import ATTNChecker, ATTNCheckerConfig
from repro.faults.injector import FLIP_KINDS, FaultInjector, FaultSpec
from repro.models.classification import SequenceClassificationModel
from repro.nn.attention import ComposedHooks, RecordingHooks
from repro.utils.rng import new_rng

__all__ = ["CampaignResult", "DetectionCorrectionCampaign"]


@dataclass
class CampaignResult:
    """Aggregate outcome for one (matrix, error type) pair.

    ``benign_masked`` counts trials in which the checker saw nothing *and*
    the output still matched the fault-free reference bit-for-bit: this
    happens when the fault lands in a value that is logically masked out of
    the computation (e.g. a padded sequence position whose attention
    probability is exactly zero), so there is nothing to detect or correct.
    Such trials are covered by construction and are reported separately from
    genuine detections.
    """

    matrix: str
    error_type: str
    trials: int = 0
    detected: int = 0
    corrected: int = 0
    output_matches_reference: int = 0
    benign_masked: int = 0
    #: Normalised flip-kind mix the campaign drew from for this pair
    #: (``{"exponent_msb": 1.0}`` for the historical single-mechanism run).
    flip_kind_mix: Dict[str, float] = field(default_factory=lambda: {"exponent_msb": 1.0})
    #: Per-flip-kind trial / detection / correction counters — only kinds
    #: that actually fired appear as keys.
    trials_by_kind: Dict[str, int] = field(default_factory=dict)
    detected_by_kind: Dict[str, int] = field(default_factory=dict)
    corrected_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_kind(self, kind: str, detected: bool, corrected: bool) -> None:
        """Accumulate one trial into the per-flip-kind counters."""
        self.trials_by_kind[kind] = self.trials_by_kind.get(kind, 0) + 1
        self.detected_by_kind[kind] = self.detected_by_kind.get(kind, 0) + int(detected)
        self.corrected_by_kind[kind] = self.corrected_by_kind.get(kind, 0) + int(corrected)

    def detection_rate_for_kind(self, kind: str) -> float:
        """Detection rate among the trials injected with ``kind``."""
        n = self.trials_by_kind.get(kind, 0)
        return self.detected_by_kind.get(kind, 0) / n if n else float("nan")

    def correction_rate_for_kind(self, kind: str) -> float:
        """Correction rate among the trials injected with ``kind``."""
        n = self.trials_by_kind.get(kind, 0)
        return self.corrected_by_kind.get(kind, 0) / n if n else float("nan")

    @property
    def effective_trials(self) -> int:
        """Trials in which the fault actually influenced the computation."""
        return self.trials - self.benign_masked

    @property
    def detection_rate(self) -> float:
        """Detection rate over the faults that influenced the computation."""
        n = self.effective_trials
        return self.detected / n if n else 1.0

    @property
    def correction_rate(self) -> float:
        """Correction rate over the faults that influenced the computation."""
        n = self.effective_trials
        return self.corrected / n if n else 1.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of all trials whose final output equals the fault-free output."""
        return self.output_matches_reference / self.trials if self.trials else float("nan")


class DetectionCorrectionCampaign:
    """Run ATTNChecker-protected fault-injection campaigns on one model.

    Parameters
    ----------
    model:
        Sequence-classification model from the zoo.
    batch:
        Encoded input batch used for every trial (evaluation mode, so runs are
        bit-reproducible and the only difference between trials is the fault).
    checker_config:
        ATTNChecker configuration (full frequencies by default).
    atol / rtol:
        Tolerance when comparing the protected output against the fault-free
        reference.
    """

    def __init__(
        self,
        model: SequenceClassificationModel,
        batch: Dict[str, np.ndarray],
        checker_config: Optional[ATTNCheckerConfig] = None,
        rng: Optional[np.random.Generator] = None,
        rtol: float = 1e-6,
        atol: float = 1e-6,
    ) -> None:
        self.model = model
        self.batch = batch
        self.checker_config = checker_config
        self.rng = rng if rng is not None else new_rng()
        self.rtol = rtol
        self.atol = atol
        self._reference_logits: Optional[np.ndarray] = None

    # -- reference ---------------------------------------------------------------------

    def _forward_logits(self, hooks) -> np.ndarray:
        self.model.eval()
        self.model.set_attention_hooks(hooks)
        try:
            output = self.model(
                self.batch["input_ids"], attention_mask=self.batch.get("attention_mask")
            )
        finally:
            self.model.set_attention_hooks(None)
            self.model.train()
        return output.logits.data.copy()

    def reference_logits(self) -> np.ndarray:
        if self._reference_logits is None:
            self._reference_logits = self._forward_logits(None)
        return self._reference_logits

    # -- single trial -------------------------------------------------------------------

    def run_trial(
        self, matrix: str, error_type: str, flip_kind: str = "exponent_msb"
    ) -> Dict[str, bool]:
        """One protected injection trial; returns detection/correction flags."""
        reference = self.reference_logits()
        spec = FaultSpec(
            matrix=matrix, error_type=error_type, layer_index=0, flip_kind=flip_kind
        )
        injector = FaultInjector([spec], rng=self.rng)
        checker = ATTNChecker(self.checker_config)
        logits = self._forward_logits(ComposedHooks([injector, checker]))

        detected = checker.stats.total_detections > 0
        corrected = (
            checker.stats.total_corrections > 0
            and checker.stats.total_residual_extreme == 0
        )
        matches = bool(
            np.allclose(logits, reference, rtol=self.rtol, atol=self.atol, equal_nan=False)
        )
        return {"detected": detected, "corrected": corrected, "matches": matches}

    # -- campaign ------------------------------------------------------------------------

    def run(
        self,
        matrices: Sequence[str] = ("Q", "K", "V", "AS", "CL", "O"),
        error_types: Sequence[str] = ("inf", "nan", "near_inf"),
        trials: int = 10,
        flip_kind_weights: Optional[Dict[str, float]] = None,
    ) -> List[CampaignResult]:
        """Run ``trials`` protected injections per (matrix, error type) pair.

        ``flip_kind_weights`` maps flip kinds to mix weights for the
        flip-based fault family: each ``"near_inf"`` trial draws its
        bit-level mechanism from the normalised mix (assignment-based error
        types always use the default kind).  ``None`` keeps the historical
        single-mechanism campaign — no extra RNG draws, so existing
        campaigns replay bit-for-bit.
        """
        mix = self._normalised_mix(flip_kind_weights)
        kinds, weights = zip(*sorted(mix.items()))
        results: List[CampaignResult] = []
        for matrix in matrices:
            for error_type in error_types:
                result = CampaignResult(
                    matrix=matrix, error_type=error_type, flip_kind_mix=dict(mix)
                )
                for _ in range(trials):
                    kind = "exponent_msb"
                    if error_type == "near_inf" and flip_kind_weights is not None:
                        kind = str(kinds[int(self.rng.choice(len(kinds), p=weights))])
                    outcome = self.run_trial(matrix, error_type, flip_kind=kind)
                    result.trials += 1
                    benign = not outcome["detected"] and outcome["matches"]
                    result.benign_masked += int(benign)
                    result.detected += int(outcome["detected"])
                    result.corrected += int(outcome["corrected"])
                    result.output_matches_reference += int(outcome["matches"])
                    result.record_kind(
                        kind, outcome["detected"], outcome["corrected"]
                    )
                results.append(result)
        return results

    @staticmethod
    def _normalised_mix(weights: Optional[Dict[str, float]]) -> Dict[str, float]:
        """Validate and normalise a flip-kind mix (default: exponent MSB only)."""
        if weights is None:
            return {"exponent_msb": 1.0}
        unknown = set(weights) - set(FLIP_KINDS)
        if unknown:
            raise KeyError(
                f"unknown flip kinds {sorted(unknown)}; expected a subset of {FLIP_KINDS}"
            )
        total = float(sum(weights.values()))
        if total <= 0 or any(w < 0 for w in weights.values()):
            raise ValueError(f"flip-kind weights must be non-negative with a positive sum, got {weights!r}")
        return {kind: float(w) / total for kind, w in weights.items() if w > 0}

    @staticmethod
    def all_corrected(results: Sequence[CampaignResult]) -> bool:
        """Paper's headline claim: every injected extreme error detected & corrected."""
        return all(
            r.detection_rate == 1.0 and r.correction_rate == 1.0 and r.recovery_rate == 1.0
            for r in results
        )

"""Error-propagation study (reproduces Table 2 of the paper).

For each fault-injection matrix (Q, K, V, AS, CL) and each error class (INF,
NaN, near-INF), a single 0D fault is injected into the GEMM output of one
attention layer and every downstream matrix of the same layer is compared
against a fault-free reference execution.  The comparison yields the paper's
pattern/type notation (``1R-NaN``, ``2D-M``, ...).

Both runs use the same weights, the same inputs and evaluation mode (dropout
disabled), so any difference between reference and faulty matrices is caused
exclusively by the injected fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.patterns import describe_corruption
from repro.core.thresholds import ABFTThresholds
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.precision import PrecisionSimulationHooks
from repro.models.classification import SequenceClassificationModel
from repro.nn.attention import ATTENTION_MATRIX_NAMES, ComposedHooks, RecordingHooks
from repro.utils.rng import new_rng

__all__ = ["PropagationResult", "PropagationStudy"]


def _precision_value_dtype(precision):
    """NumPy dtype whose exponent layout matches a simulated precision name."""
    if precision is None:
        return None
    return {"float16": np.float16}.get(precision, np.float32)


#: Downstream matrices reported in Table 2, in dataflow order.
DOWNSTREAM_ORDER: Sequence[str] = ("Q", "K", "V", "AS", "AP", "CL", "O")


@dataclass
class PropagationResult:
    """Propagation footprint of one injected fault.

    ``patterns[name]`` holds the Table-2 style cell (e.g. ``"1R-NaN"``) for
    every downstream matrix ``name``; matrices untouched by the fault get
    ``"-"``.
    """

    matrix: str
    error_type: str
    layer_index: int
    patterns: Dict[str, str]
    injected_position: Optional[tuple] = None

    def cell(self, downstream: str) -> str:
        return self.patterns.get(downstream, "-")


class PropagationStudy:
    """Run single-fault propagation traces on one model.

    Parameters
    ----------
    model:
        A sequence-classification model from the zoo.
    batch:
        Encoded batch dict (``input_ids``, ``attention_mask``, ``labels``).
    layer_index:
        Which attention layer to instrument (default 0).
    thresholds:
        Thresholds used to classify near-INF values.
    """

    def __init__(
        self,
        model: SequenceClassificationModel,
        batch: Dict[str, np.ndarray],
        layer_index: int = 0,
        thresholds: Optional[ABFTThresholds] = None,
        rng: Optional[np.random.Generator] = None,
        precision: Optional[str] = None,
    ) -> None:
        """``precision`` optionally rounds every GEMM output through a reduced
        training precision (e.g. ``"float32"``) in *both* the reference and the
        faulty run, reproducing the fp32 overflow/transition semantics of the
        paper's Table 2."""
        self.model = model
        self.batch = batch
        self.layer_index = layer_index
        self.thresholds = thresholds or ABFTThresholds()
        self.rng = rng if rng is not None else new_rng()
        self.precision = precision
        self._reference: Optional[Dict[str, np.ndarray]] = None

    # -- reference run ------------------------------------------------------------------

    def _run_forward(self, hooks) -> Dict[str, np.ndarray]:
        self.model.eval()
        self.model.set_attention_hooks(hooks)
        try:
            self.model(
                self.batch["input_ids"],
                attention_mask=self.batch.get("attention_mask"),
            )
        finally:
            self.model.set_attention_hooks(None)
            self.model.train()
        recorder = hooks.hooks[-1] if isinstance(hooks, ComposedHooks) else hooks
        matrices = dict(recorder.matrices(self.layer_index))
        if "CL_merged" in matrices and "CL" in matrices:
            # Keep the per-head CL (the APV output) under "CL" as in the paper.
            matrices.pop("CL_merged")
        return matrices

    def _hook_chain(self, *hooks) -> ComposedHooks:
        chain = []
        if self.precision is not None:
            chain.append(PrecisionSimulationHooks(self.precision))
        chain.extend(hooks)
        return ComposedHooks(chain)

    def reference_matrices(self) -> Dict[str, np.ndarray]:
        """Fault-free matrices of the instrumented layer (cached)."""
        if self._reference is None:
            self._reference = self._run_forward(self._hook_chain(RecordingHooks()))
        return self._reference

    # -- single trace ----------------------------------------------------------------------

    def trace(self, matrix: str, error_type: str, position: Optional[tuple] = None) -> PropagationResult:
        """Inject one fault and report the downstream propagation pattern."""
        reference = self.reference_matrices()
        spec = FaultSpec(
            matrix=matrix,
            error_type=error_type,
            layer_index=self.layer_index,
            position=position,
        )
        injector = FaultInjector(
            [spec], rng=self.rng, value_dtype=_precision_value_dtype(self.precision)
        )
        recorder = RecordingHooks()
        faulty = self._run_forward(self._hook_chain(injector, recorder))

        patterns: Dict[str, str] = {}
        for name in DOWNSTREAM_ORDER:
            if name not in faulty or name not in reference:
                patterns[name] = "-"
                continue
            patterns[name] = describe_corruption(
                faulty[name], reference[name], thresholds=self.thresholds
            )
        injected_position = injector.records[0].position if injector.records else None
        return PropagationResult(
            matrix=matrix,
            error_type=error_type,
            layer_index=self.layer_index,
            patterns=patterns,
            injected_position=injected_position,
        )

    # -- full table ---------------------------------------------------------------------------

    def run_table(
        self,
        matrices: Sequence[str] = ("Q", "K", "V", "AS", "CL"),
        error_types: Sequence[str] = ("inf", "nan", "near_inf"),
        trials: int = 1,
    ) -> List[PropagationResult]:
        """Trace every (matrix, error type) combination; ``trials`` repetitions each.

        With ``trials > 1`` the result list contains one entry per repetition
        (different random positions); aggregation is left to the caller (the
        Table-2 bench reports the most severe pattern observed).
        """
        results: List[PropagationResult] = []
        for matrix in matrices:
            for error_type in error_types:
                for _ in range(trials):
                    results.append(self.trace(matrix, error_type))
        return results

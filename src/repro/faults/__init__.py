"""Fault injection and error-propagation study (Section 3 of the paper).

``injector``
    Hooks that corrupt attention GEMM outputs with INF, NaN, near-INF
    (exponent-MSB bit flip) or plain numeric errors, at controlled or random
    positions — the paper's fault model of transient compute faults.
``propagation``
    Traces how a single injected 0D fault propagates through the downstream
    matrices of the attention mechanism and classifies the patterns
    (reproduces Table 2).
``vulnerability``
    Estimates the probability that an unhandled fault leads to a
    non-trainable state (NaN loss), per model, error type and injected matrix
    (reproduces Table 4).
``campaign``
    End-to-end detection/correction campaigns with ATTNChecker enabled
    (reproduces the Section 5.2 claim of 100% detection and correction).
"""

from repro.faults.injector import (
    ERROR_TYPES,
    FLIP_KINDS,
    CollectiveFaultInjector,
    CollectiveFaultSpec,
    CollectiveInjectionRecord,
    FaultInjector,
    FaultSpec,
    InjectionRecord,
    TARGET_MATRICES,
    corrupt_scalar,
)
from repro.faults.precision import PRECISION_FORMATS, PrecisionFormat, PrecisionSimulationHooks
from repro.faults.propagation import PropagationResult, PropagationStudy
from repro.faults.vulnerability import VulnerabilityResult, VulnerabilityStudy
from repro.faults.campaign import CampaignResult, DetectionCorrectionCampaign

__all__ = [
    "ERROR_TYPES",
    "FLIP_KINDS",
    "TARGET_MATRICES",
    "FaultSpec",
    "FaultInjector",
    "InjectionRecord",
    "corrupt_scalar",
    "CollectiveFaultSpec",
    "CollectiveFaultInjector",
    "CollectiveInjectionRecord",
    "PRECISION_FORMATS",
    "PrecisionFormat",
    "PrecisionSimulationHooks",
    "PropagationStudy",
    "PropagationResult",
    "VulnerabilityStudy",
    "VulnerabilityResult",
    "DetectionCorrectionCampaign",
    "CampaignResult",
]

"""Training-precision simulation.

The paper trains in single precision on GPUs; this reproduction computes in
float64 (NumPy's native GEMM precision).  The extra exponent headroom of
float64 changes one behaviour that matters for the fault studies: a near-INF
value produced by an exponent-bit flip sits orders of magnitude further from
the overflow threshold, so it is far less likely to turn into INF/NaN as it
propagates (see EXPERIMENTS.md, Table 4 notes).

:class:`PrecisionSimulationHooks` closes that gap without rewriting the
substrate: it rounds the output of every attention GEMM (and the observed AP)
through a reduced-precision format — float32 by default, or bfloat16-like /
fp16-like ranges — reproducing both the quantisation and, crucially, the
*overflow semantics* of the paper's training precision.  Register it **before**
the fault injector and the checker::

    hooks = ComposedHooks([PrecisionSimulationHooks(), injector, checker])

so the injected fault and the ABFT checksums all see the same reduced-precision
values, exactly as they would inside an fp32 CUDA kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn.attention import AttentionHooks, GemmContext

__all__ = ["PRECISION_FORMATS", "PrecisionFormat", "PrecisionSimulationHooks", "simulate_precision"]


@dataclass(frozen=True)
class PrecisionFormat:
    """Reduced-precision format description.

    Attributes
    ----------
    name:
        Human-readable name.
    max_value:
        Largest finite magnitude; values beyond it overflow to +/-inf, as they
        would in the real format.
    round_dtype:
        NumPy dtype used to quantise the mantissa (``None`` keeps float64
        mantissas and only applies the overflow threshold, which is how
        bfloat16/fp16 ranges are approximated without a native dtype).
    """

    name: str
    max_value: float
    round_dtype: Optional[np.dtype] = None


PRECISION_FORMATS: Dict[str, PrecisionFormat] = {
    "float32": PrecisionFormat("float32", float(np.finfo(np.float32).max), np.dtype(np.float32)),
    "tf32": PrecisionFormat("tf32", float(np.finfo(np.float32).max), np.dtype(np.float32)),
    "float16": PrecisionFormat("float16", 65504.0, np.dtype(np.float16)),
    "bfloat16": PrecisionFormat("bfloat16", 3.39e38, np.dtype(np.float32)),
    "float64": PrecisionFormat("float64", float(np.finfo(np.float64).max), None),
}


def simulate_precision(values: np.ndarray, fmt: PrecisionFormat) -> np.ndarray:
    """Round ``values`` through the reduced-precision format, in place.

    Finite values larger than the format's maximum overflow to signed
    infinity; NaN propagates unchanged.  The array keeps its float64 dtype so
    downstream NumPy kernels are unaffected.
    """
    if fmt.round_dtype is not None and fmt.round_dtype != values.dtype:
        with np.errstate(over="ignore", invalid="ignore"):
            rounded = values.astype(fmt.round_dtype).astype(values.dtype)
    else:
        rounded = values.copy()
    with np.errstate(invalid="ignore"):
        overflow = np.isfinite(values) & (np.abs(values) > fmt.max_value)
    if overflow.any():
        rounded = np.where(overflow, np.sign(values) * np.inf, rounded)
    values[...] = rounded
    return values


class PrecisionSimulationHooks(AttentionHooks):
    """Round every attention GEMM output through a reduced-precision format."""

    def __init__(self, format_name: str = "float32") -> None:
        if format_name not in PRECISION_FORMATS:
            raise KeyError(
                f"unknown precision format {format_name!r}; available: {sorted(PRECISION_FORMATS)}"
            )
        self.format = PRECISION_FORMATS[format_name]
        self.gemm_outputs_processed = 0

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        self.gemm_outputs_processed += 1
        if self.format.round_dtype is None and self.format.max_value >= float(np.finfo(np.float64).max):
            return out  # float64 passthrough
        return simulate_precision(out, self.format)

"""Analytical GPU performance model (the substitute for the A100 testbed).

The paper's overhead and scalability results (Figures 7–12) are wall-clock
measurements on NVIDIA A100 GPUs with CUDA kernels.  This reproduction has no
GPU, so those experiments are regenerated from an explicit roofline-style
cost model:

* :mod:`repro.perfmodel.gpu` — device specification (peak FLOP/s, HBM
  bandwidth, kernel-launch overhead) and the roofline timing rule;
* :mod:`repro.perfmodel.kernels` — cost models of the kernels involved:
  cuBLAS-style GEMMs, the custom checksum-encoding kernel vs. the
  cuBLAS-strided-batched alternative, fused vs. non-fused checksum updates,
  detection/correction kernels;
* :mod:`repro.perfmodel.attention_cost` — attention-block and ABFT times per
  model (Figures 7 and 8);
* :mod:`repro.perfmodel.training_cost` — whole-training-step times
  (Figures 7, 8, 10);
* :mod:`repro.perfmodel.encoder_throughput` — checksum-encoding throughput
  sweep (Figure 9);
* :mod:`repro.perfmodel.recovery` — checkpoint/restore vs. ABFT recovery
  overhead (Figure 11, Section 5.5);
* :mod:`repro.perfmodel.scale` — multi-billion-parameter data-parallel
  training on 1024 GPUs (Figure 12).

Absolute times are not expected to match the authors' testbed; the model is
calibrated so the *shape* of every figure (who wins, by what factor, how the
trend moves with batch size / error rate / model size) is preserved.  Every
constant is documented where it is defined.
"""

from repro.perfmodel.gpu import A100_SPEC, GPUSpec, KernelLaunch, roofline_time
from repro.perfmodel.kernels import (
    KernelCostModel,
    gemm_time,
    checksum_encode_time_custom,
    checksum_encode_time_cublas,
)
from repro.perfmodel.attention_cost import AttentionCostModel, ABFTOverheadBreakdown
from repro.perfmodel.training_cost import TrainingStepCostModel
from repro.perfmodel.encoder_throughput import EncoderThroughputModel, EncoderThroughputPoint
from repro.perfmodel.recovery import RecoveryCostModel, RecoveryComparison
from repro.perfmodel.scale import MultiGPUScaleModel, ScalePoint

__all__ = [
    "GPUSpec",
    "A100_SPEC",
    "KernelLaunch",
    "roofline_time",
    "KernelCostModel",
    "gemm_time",
    "checksum_encode_time_custom",
    "checksum_encode_time_cublas",
    "AttentionCostModel",
    "ABFTOverheadBreakdown",
    "TrainingStepCostModel",
    "EncoderThroughputModel",
    "EncoderThroughputPoint",
    "RecoveryCostModel",
    "RecoveryComparison",
    "MultiGPUScaleModel",
    "ScalePoint",
]

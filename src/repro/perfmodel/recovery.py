"""Recovery cost: checkpoint/restore vs. ATTNChecker (Figure 11, Section 5.5).

The baseline recovery strategy checkpoints every training step and, on
encountering a non-trainable state, reloads the last checkpoint and
re-executes the step.  Its per-event overhead is therefore::

    (checkpoint save + checkpoint load + re-executed step) / step time

which the paper measures at several hundred percent of a step.  ATTNChecker's
recovery is the ABFT detection it already pays plus an in-place correction
kernel — under 10 % of a step — giving the 24x–49x reduction of Figure 11.

Calibration notes
-----------------
* The roofline step time of :class:`TrainingStepCostModel` prices GPU kernels
  only.  The per-step times the paper reports (Figure 7, 50–350 ms at batch 8)
  additionally contain eager-mode PyTorch dispatch, data loading and Python
  control flow; ``framework_factor`` (default 10x) scales the roofline step up
  to that measured regime so the checkpoint I/O is compared against a
  realistic step length.
* Checkpoints contain the fp32 model weights (the paper's checkpoint scripts
  save the HuggingFace model state), written to / read from local NVMe-class
  storage at an effective 1.5 / 2.0 GB/s including serialization.
* The ATTNChecker bar uses the measured-style per-step ABFT overhead (the
  Figure-7 quantity) plus the correction kernels of the affected layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.models.config import ModelConfig
from repro.perfmodel.gpu import A100_SPEC, GPUSpec
from repro.perfmodel.training_cost import TrainingStepCostModel

__all__ = ["RecoveryComparison", "RecoveryCostModel"]

#: Effective checkpoint write bandwidth (bytes/s) including serialization.
DEFAULT_CHECKPOINT_WRITE_BANDWIDTH = 1.5e9
#: Effective checkpoint read bandwidth (bytes/s).
DEFAULT_CHECKPOINT_READ_BANDWIDTH = 2.0e9
#: Bytes of checkpoint state per parameter (fp32 weights).
CHECKPOINT_BYTES_PER_PARAM = 4
#: Measured-step / roofline-step ratio for eager-mode fine-tuning (see module
#: docstring).
DEFAULT_FRAMEWORK_FACTOR = 10.0
#: Host-side (Python / dispatch) time ATTNChecker's control logic adds per
#: protected layer and step in the eager-mode integration: roughly nine extra
#: kernel dispatches (encode / update / detect for three sections) at ~50 us
#: of eager-mode overhead each.
DEFAULT_ABFT_HOST_OVERHEAD_PER_LAYER = 9 * 50e-6


@dataclass
class RecoveryComparison:
    """Per-model comparison of the two recovery strategies."""

    model_name: str
    step_seconds: float
    checkpoint_save_seconds: float
    checkpoint_load_seconds: float
    abft_step_fraction: float
    abft_host_seconds: float
    abft_correction_seconds: float

    @property
    def checkpoint_restore_overhead(self) -> float:
        """Per-event overhead of checkpoint/restore relative to a step."""
        return (
            self.checkpoint_save_seconds + self.checkpoint_load_seconds + self.step_seconds
        ) / self.step_seconds

    @property
    def attnchecker_overhead(self) -> float:
        """Per-event overhead of ATTNChecker recovery relative to a step."""
        return (
            self.abft_step_fraction
            + (self.abft_host_seconds + self.abft_correction_seconds) / self.step_seconds
        )

    @property
    def improvement(self) -> float:
        """Overhead-reduction factor (the paper's 24x-49x)."""
        attn = self.attnchecker_overhead
        return self.checkpoint_restore_overhead / attn if attn > 0 else float("inf")


class RecoveryCostModel:
    """Build :class:`RecoveryComparison` objects from the step cost model."""

    def __init__(
        self,
        config: ModelConfig,
        batch_size: int,
        seq_len: Optional[int] = None,
        gpu: GPUSpec = A100_SPEC,
        checkpoint_write_bandwidth: float = DEFAULT_CHECKPOINT_WRITE_BANDWIDTH,
        checkpoint_read_bandwidth: float = DEFAULT_CHECKPOINT_READ_BANDWIDTH,
        framework_factor: float = DEFAULT_FRAMEWORK_FACTOR,
        abft_host_overhead_per_layer: float = DEFAULT_ABFT_HOST_OVERHEAD_PER_LAYER,
    ) -> None:
        if framework_factor < 1.0:
            raise ValueError("framework_factor must be at least 1 (roofline is a lower bound)")
        self.config = config
        self.step_model = TrainingStepCostModel(config, batch_size, seq_len=seq_len, gpu=gpu)
        self.checkpoint_write_bandwidth = checkpoint_write_bandwidth
        self.checkpoint_read_bandwidth = checkpoint_read_bandwidth
        self.framework_factor = framework_factor
        self.abft_host_overhead_per_layer = abft_host_overhead_per_layer

    def checkpoint_bytes(self) -> float:
        """Size of one checkpoint (fp32 model weights)."""
        return float(self.config.parameter_count() * CHECKPOINT_BYTES_PER_PARAM)

    def measured_step_seconds(self) -> float:
        """Roofline step time scaled to the eager-mode measured regime."""
        return self.framework_factor * self.step_model.step_time()

    def compare(self) -> RecoveryComparison:
        """Price both recovery strategies for this model."""
        step_seconds = self.measured_step_seconds()
        ckpt_bytes = self.checkpoint_bytes()
        save = ckpt_bytes / self.checkpoint_write_bandwidth
        load = ckpt_bytes / self.checkpoint_read_bandwidth
        correction = (
            self.step_model.attention.correction_time("1D")
            + self.step_model.attention.correction_time("O")
        )
        return RecoveryComparison(
            model_name=self.config.name,
            step_seconds=step_seconds,
            checkpoint_save_seconds=save,
            checkpoint_load_seconds=load,
            abft_step_fraction=self.step_model.step_overhead(optimized=True),
            abft_host_seconds=self.config.num_layers * self.abft_host_overhead_per_layer,
            abft_correction_seconds=correction,
        )

    # -- Section 5.5 correction micro-overheads -------------------------------------------------

    def correction_overheads(self) -> Dict[str, float]:
        """Correction-only overhead relative to a (roofline) step, per pattern."""
        step_seconds = self.step_model.step_time()
        attention = self.step_model.attention
        return {
            "0D": attention.correction_time("0D") / step_seconds,
            "1D": attention.correction_time("1D") / step_seconds,
            "O": attention.correction_time("O") / step_seconds,
        }

"""Attention-block and ABFT cost model (Figures 7 and 8).

For one attention layer the model prices:

* the six protected GEMMs (cuBLAS efficiencies by shape),
* the softmax, masking, dropout and head-permute traffic (bandwidth bound),
* the ABFT work of the three protection sections, in two variants:

  - **optimised** (the paper's ATTNChecker): custom coalesced encoding kernel,
    checksum updates fused into the operand GEMMs (no extra kernel launches,
    negligible extra FLOPs), detection kernels that stream the boundary
    matrix once;
  - **non-optimised** ("Non-OPT" in Figure 8): encoding through cuBLAS
    strided-batched GEMMs (<10 % of bandwidth), every checksum update and
    detection issued as its own kernel with an extra pass over the operand.

Backward-pass cost is approximated as twice the forward cost (the standard
2x-FLOPs rule for dense layers), so a protected training step pays the ABFT
detection path once per forward execution, as in the paper's integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.sections import PROTECTION_SECTIONS
from repro.models.config import ModelConfig
from repro.perfmodel.gpu import A100_SPEC, GPUSpec
from repro.perfmodel.kernels import KernelCostModel

__all__ = ["ABFTOverheadBreakdown", "AttentionCostModel"]

#: Forward + backward cost multiplier for a training step.
BACKWARD_MULTIPLIER = 3.0


@dataclass
class ABFTOverheadBreakdown:
    """Per-section ABFT time (seconds) for one attention layer forward pass."""

    encode: Dict[str, float] = field(default_factory=dict)
    update: Dict[str, float] = field(default_factory=dict)
    detect: Dict[str, float] = field(default_factory=dict)

    def section_total(self, name: str) -> float:
        return self.encode.get(name, 0.0) + self.update.get(name, 0.0) + self.detect.get(name, 0.0)

    def total(self, frequencies: Optional[Mapping[str, float]] = None) -> float:
        """Total ABFT time, optionally weighted by per-section frequencies."""
        total = 0.0
        for name in PROTECTION_SECTIONS:
            f = 1.0 if frequencies is None else float(frequencies.get(name, 0.0))
            total += f * self.section_total(name)
        return total


class AttentionCostModel:
    """Time model of one protected attention layer.

    Parameters
    ----------
    config:
        Model architecture (use the ``paper``-size configs for Figures 7-12).
    batch_size, seq_len:
        Workload geometry.
    gpu, element_size:
        Device and numeric precision (fp32 = 4 bytes, as the paper trains).
    """

    def __init__(
        self,
        config: ModelConfig,
        batch_size: int,
        seq_len: Optional[int] = None,
        gpu: GPUSpec = A100_SPEC,
        element_size: int = 4,
    ) -> None:
        self.config = config
        self.batch_size = batch_size
        self.seq_len = seq_len if seq_len is not None else config.max_seq_len
        self.kernels = KernelCostModel(gpu=gpu, element_size=element_size)
        self.element_size = element_size

    # -- unprotected attention ---------------------------------------------------------

    def attention_forward_time(self) -> float:
        """Forward time of one attention layer (seconds), no ABFT."""
        b, s = self.batch_size, self.seq_len
        d, h, dh = self.config.hidden_size, self.config.num_heads, self.config.head_dim
        k = self.kernels

        time = 0.0
        # Projections X W_Q / X W_K / X W_V and the output projection CL W_O.
        time += 4 * k.gemm(b * s, d, d)
        # Per-head score and context GEMMs.
        time += k.gemm(s, s, dh, batch=b * h)
        time += k.gemm(s, dh, s, batch=b * h)
        # Softmax over AS (read + write + reduction traffic) and scaling/mask.
        time += k.elementwise(b * h * s * s, passes=3.0, flops_per_element=7.0)
        # Attention dropout on AP.
        time += k.elementwise(b * h * s * s, passes=2.0, flops_per_element=1.0)
        # Head split / merge permutes (PyTorch materialises these copies).
        time += 2 * k.elementwise(b * s * d, passes=2.0, flops_per_element=0.0)
        # Bias additions on the four projections.
        time += k.elementwise(4 * b * s * d, passes=2.0, flops_per_element=1.0)
        return time

    def attention_step_time(self) -> float:
        """Forward + backward time of one attention layer in training."""
        return BACKWARD_MULTIPLIER * self.attention_forward_time()

    # -- ABFT work -----------------------------------------------------------------------

    def abft_breakdown(self, optimized: bool = True) -> ABFTOverheadBreakdown:
        """ABFT time per section and phase for one forward execution."""
        b, s = self.batch_size, self.seq_len
        d, h, dh = self.config.hidden_size, self.config.num_heads, self.config.head_dim
        k = self.kernels
        breakdown = ABFTOverheadBreakdown()

        # ---- encoding -----------------------------------------------------------------
        x_elements = b * s * d            # column checksums of X  (section AS)
        ap_elements = b * h * s * s       # column checksums of AP (section CL)
        wv_elements = d * d               # per-head row checksums of W_V (section CL)
        if optimized:
            breakdown.encode["AS"] = k.encode_custom(x_elements)
            breakdown.encode["CL"] = k.encode_custom(ap_elements) + k.encode_custom(wv_elements)
        else:
            breakdown.encode["AS"] = k.encode_cublas(x_elements, num_blocks=b)
            breakdown.encode["CL"] = k.encode_cublas(ap_elements, num_blocks=b * h) + k.encode_cublas(
                wv_elements, num_blocks=h
            )
        breakdown.encode["O"] = 0.0  # S_O reuses the checksums carried from S_CL.

        # ---- checksum updates ----------------------------------------------------------
        # Update GEMM shapes: (2 x D)(D x D) twice, (2 x dh)(dh x S) and
        # (S x dh)(dh x 2) per head for AS; (2 x S)(S x dh) and (S x S)(S x 2)
        # per head for CL; (2 x D)(D x D) for O.
        def update_time(shapes, fused: bool) -> float:
            total = 0.0
            for (m, n, kk, batch) in shapes:
                if fused:
                    # Folded into the operand GEMM: only the extra FLOPs count,
                    # at the same efficiency, with no additional launch.
                    extra_flops = 2.0 * m * n * kk * batch
                    total += extra_flops / (self.kernels.gpu.peak_flops * 0.5)
                else:
                    total += k.gemm(m, n, kk, batch=batch)
            return total

        as_updates = [(2, d, d, b), (2, d, d, b), (2, s, dh, b * h), (s, 2, dh, b * h)]
        cl_updates = [(s, 2, d, b), (2, dh, s, b * h), (s, 2, s, b * h)]
        o_updates = [(2, d, d, b)]
        breakdown.update["AS"] = update_time(as_updates, fused=optimized)
        breakdown.update["CL"] = update_time(cl_updates, fused=optimized)
        breakdown.update["O"] = update_time(o_updates, fused=optimized)

        # ---- detection -------------------------------------------------------------------
        as_elements = b * h * s * s
        cl_elements = b * h * s * dh
        o_elements = b * s * d
        if optimized:
            # One streaming pass over the boundary matrix, fused col+row sums.
            breakdown.detect["AS"] = k.elementwise(as_elements, passes=1.0, flops_per_element=4.0)
            breakdown.detect["CL"] = k.elementwise(cl_elements, passes=1.0, flops_per_element=4.0)
            breakdown.detect["O"] = k.elementwise(o_elements, passes=1.0, flops_per_element=2.0)
        else:
            # Separate kernels per checksum side, each re-reading the matrix.
            breakdown.detect["AS"] = k.elementwise(as_elements, passes=2.0, flops_per_element=4.0, launches=4)
            breakdown.detect["CL"] = k.elementwise(cl_elements, passes=2.0, flops_per_element=4.0, launches=4)
            breakdown.detect["O"] = k.elementwise(o_elements, passes=2.0, flops_per_element=2.0, launches=2)
        return breakdown

    def abft_time(self, optimized: bool = True, frequencies: Optional[Mapping[str, float]] = None) -> float:
        """Total ABFT time added to one forward execution of the layer."""
        return self.abft_breakdown(optimized=optimized).total(frequencies)

    # -- overheads --------------------------------------------------------------------------

    def attention_overhead(
        self, optimized: bool = True, frequencies: Optional[Mapping[str, float]] = None
    ) -> float:
        """ABFT overhead relative to the attention block in training (Figure 7/8 left)."""
        return self.abft_time(optimized=optimized, frequencies=frequencies) / self.attention_step_time()

    def correction_time(self, pattern: str = "0D") -> float:
        """Worst-case correction kernel time for one fault (Section 5.5).

        ``"0D"`` repairs one element per boundary vector of one section;
        ``"1D"`` repairs a whole propagated row/column; ``"O"`` repairs the
        merged output matrix, which is larger.
        """
        b, s = self.batch_size, self.seq_len
        d, h, dh = self.config.hidden_size, self.config.num_heads, self.config.head_dim
        if pattern == "0D":
            elements = b * h * s
        elif pattern == "1D":
            elements = b * h * s * 2
        elif pattern == "O":
            elements = b * s * d
        else:
            raise KeyError(f"unknown correction pattern {pattern!r}")
        return self.kernels.elementwise(elements, passes=2.0, flops_per_element=4.0, launches=2)

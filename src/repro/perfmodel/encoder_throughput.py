"""Checksum-encoding throughput sweep (Figure 9).

Figure 9 compares the effective memory throughput (TB/s) of checksum encoding
for batched attention operands, as a function of the number of (head x batch)
blocks, between cuBLAS 12.5 and ATTNChecker's custom kernel on an A100 with
2 TB/s peak bandwidth.  The custom kernel reaches up to 91.4 % of peak while
cuBLAS stays below 10 %, a ~13x gap.

The model reproduces the sweep from the kernel cost models: throughput is the
bytes of operand data encoded divided by the modelled kernel time, so the
small-batch regime is launch-overhead dominated (throughput ramps up with
batch size) and the large-batch regime saturates at the respective bandwidth
utilisations.

In addition, :meth:`EncoderThroughputModel.measure_numpy` measures the *real*
throughput of this package's NumPy encoder on the host CPU, so the benchmark
reports both the modelled A100 numbers and an actually-measured series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.checksums import encode_column_checksums
from repro.perfmodel.gpu import A100_SPEC, GPUSpec
from repro.perfmodel.kernels import KernelCostModel

__all__ = ["EncoderThroughputPoint", "EncoderThroughputModel"]

#: Default batch-size sweep of Figure 9.
DEFAULT_BATCH_SIZES: Sequence[int] = (24, 48, 96, 192, 384, 768, 1536)


@dataclass
class EncoderThroughputPoint:
    """Throughput of one encoder variant at one batch size."""

    batch_size: int
    bytes_encoded: float
    seconds: float

    @property
    def throughput_tbps(self) -> float:
        """Effective throughput in TB/s."""
        return self.bytes_encoded / self.seconds / 1e12 if self.seconds > 0 else float("inf")


class EncoderThroughputModel:
    """Sweep encoder throughput over batch sizes.

    Parameters
    ----------
    seq_len, block_width:
        Shape of each encoded block.  One "batch" element of Figure 9 is one
        sample's attention operand (sequence length x hidden size, BERT-base
        geometry 128 x 768 by default); the head dimension is folded into the
        width because the encoder streams whole operands.
    element_size:
        4 bytes (fp32) for the modelled GPU kernels.
    """

    def __init__(
        self,
        seq_len: int = 128,
        block_width: int = 768,
        element_size: int = 4,
        gpu: GPUSpec = A100_SPEC,
    ) -> None:
        self.seq_len = seq_len
        self.block_width = block_width
        self.element_size = element_size
        self.gpu = gpu
        self.kernels = KernelCostModel(gpu=gpu, element_size=element_size)

    def _bytes(self, batch_size: int) -> float:
        return float(batch_size * self.seq_len * self.block_width * self.element_size)

    # -- modelled A100 throughput -----------------------------------------------------------

    def model_custom(self, batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES) -> List[EncoderThroughputPoint]:
        """ATTNChecker's custom encoder (modelled)."""
        points = []
        for b in batch_sizes:
            elements = b * self.seq_len * self.block_width
            seconds = self.kernels.encode_custom(elements)
            points.append(EncoderThroughputPoint(b, self._bytes(b), seconds))
        return points

    def model_cublas(self, batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES) -> List[EncoderThroughputPoint]:
        """cuBLAS strided-batched encoding (modelled)."""
        points = []
        for b in batch_sizes:
            elements = b * self.seq_len * self.block_width
            seconds = self.kernels.encode_cublas(elements, num_blocks=b)
            points.append(EncoderThroughputPoint(b, self._bytes(b), seconds))
        return points

    # -- measured NumPy throughput -------------------------------------------------------------

    def measure_numpy(
        self,
        batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
        repeats: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> List[EncoderThroughputPoint]:
        """Measured throughput of :func:`encode_column_checksums` on this host."""
        rng = rng if rng is not None else np.random.default_rng(0)
        points = []
        for b in batch_sizes:
            data = rng.normal(size=(b, self.seq_len, self.block_width))
            encode_column_checksums(data)  # warm-up
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                encode_column_checksums(data)
                best = min(best, time.perf_counter() - start)
            points.append(EncoderThroughputPoint(b, float(data.nbytes), best))
        return points

    # -- summary ----------------------------------------------------------------------------------

    @staticmethod
    def speedup(custom: Sequence[EncoderThroughputPoint], cublas: Sequence[EncoderThroughputPoint]) -> float:
        """Mean custom/cuBLAS throughput ratio over the sweep (the paper's ~13x)."""
        ratios = [
            c.throughput_tbps / b.throughput_tbps
            for c, b in zip(custom, cublas)
            if b.throughput_tbps > 0
        ]
        return float(np.mean(ratios)) if ratios else float("nan")

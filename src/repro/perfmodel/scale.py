"""Multi-GPU, multi-billion-parameter scaling model (Figure 12).

Figure 12 simulates training 30B / 60B / 100B-parameter LLMs on 1,024 GPUs
with data parallelism (using the performance-modelling methodology of Lin et
al. 2024) and reports that ATTNChecker's overhead stays essentially constant
(~6.3 %) as the model grows.

The reproduction prices one data-parallel training step as:

* per-GPU compute: the standard ``6 * params * tokens_per_gpu`` FLOPs of a
  transformer training step at a realistic model FLOPs utilisation,
* gradient all-reduce: ring all-reduce moves ``2 (N-1)/N * bytes`` per GPU at
  the interconnect bandwidth, overlapping partially with the backward pass,
* ATTNChecker: the attention-layer ABFT cost from
  :class:`~repro.perfmodel.attention_cost.AttentionCostModel` applied to the
  per-GPU micro-batch, summed over layers.

Because both the attention GEMMs and the ABFT detection path scale linearly
with ``seq_len * hidden`` per layer (at fixed sequence length), their ratio —
and therefore the per-step overhead — is nearly independent of model size,
which is the effect the figure demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.config import ModelConfig
from repro.perfmodel.attention_cost import AttentionCostModel
from repro.perfmodel.gpu import A100_SPEC, GPUSpec
from repro.perfmodel.kernels import KernelCostModel

__all__ = ["LargeModelSpec", "ScalePoint", "MultiGPUScaleModel", "BILLION_SCALE_MODELS"]

#: Model FLOPs utilisation of a well-tuned large-scale training run.
DEFAULT_MFU = 0.45


@dataclass(frozen=True)
class LargeModelSpec:
    """Architecture of one multi-billion-parameter model."""

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    seq_len: int = 2048
    vocab_size: int = 50257

    @property
    def parameter_count(self) -> float:
        """Approximate parameter count: 12 * L * D^2 plus embeddings."""
        return 12.0 * self.num_layers * self.hidden_size**2 + self.vocab_size * self.hidden_size

    def to_model_config(self) -> ModelConfig:
        """Equivalent :class:`ModelConfig` (for the attention cost model)."""
        return ModelConfig(
            name=self.name,
            family="gpt2",
            vocab_size=self.vocab_size,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            intermediate_size=4 * self.hidden_size,
            max_seq_len=self.seq_len,
            norm_style="pre_ln",
            causal=True,
        )


#: The three model sizes of Figure 12.
BILLION_SCALE_MODELS: Dict[str, LargeModelSpec] = {
    "30B": LargeModelSpec(name="30B", hidden_size=7168, num_layers=48, num_heads=56),
    "60B": LargeModelSpec(name="60B", hidden_size=8192, num_layers=74, num_heads=64),
    "100B": LargeModelSpec(name="100B", hidden_size=10240, num_layers=80, num_heads=80),
}


@dataclass
class ScalePoint:
    """Per-step timing of one (model size, GPU count) configuration."""

    model_name: str
    parameters: float
    num_gpus: int
    compute_seconds: float
    allreduce_seconds: float
    abft_seconds: float

    @property
    def step_seconds(self) -> float:
        """Unprotected step time (all-reduce partially overlapped with backward)."""
        exposed_allreduce = max(0.0, self.allreduce_seconds - 0.5 * self.compute_seconds)
        return self.compute_seconds + exposed_allreduce

    @property
    def abft_overhead(self) -> float:
        """ATTNChecker overhead relative to the unprotected step (Figure 12)."""
        return self.abft_seconds / self.step_seconds


class MultiGPUScaleModel:
    """Data-parallel scaling model for Figure 12.

    Parameters
    ----------
    num_gpus:
        Data-parallel width (1,024 in the paper).
    micro_batch_per_gpu:
        Sequences processed by each GPU per step.
    gpu:
        Device spec (A100 by default).
    mfu:
        Model FLOPs utilisation of the dense compute.
    """

    def __init__(
        self,
        num_gpus: int = 1024,
        micro_batch_per_gpu: int = 2,
        gpu: GPUSpec = A100_SPEC,
        mfu: float = DEFAULT_MFU,
        grad_element_size: int = 2,
    ) -> None:
        if num_gpus <= 0 or micro_batch_per_gpu <= 0:
            raise ValueError("num_gpus and micro_batch_per_gpu must be positive")
        if not 0 < mfu <= 1:
            raise ValueError("mfu must lie in (0, 1]")
        self.num_gpus = num_gpus
        self.micro_batch_per_gpu = micro_batch_per_gpu
        self.gpu = gpu
        self.mfu = mfu
        self.grad_element_size = grad_element_size

    def evaluate(self, spec: LargeModelSpec) -> ScalePoint:
        """Price one training step of ``spec`` on the configured cluster."""
        params = spec.parameter_count
        tokens_per_gpu = self.micro_batch_per_gpu * spec.seq_len
        compute_flops = 6.0 * params * tokens_per_gpu
        compute_seconds = compute_flops / (self.gpu.peak_flops * self.mfu)

        grad_bytes = params * self.grad_element_size
        allreduce_bytes = 2.0 * (self.num_gpus - 1) / self.num_gpus * grad_bytes
        allreduce_seconds = allreduce_bytes / self.gpu.interconnect_bandwidth

        attention = AttentionCostModel(
            spec.to_model_config(), batch_size=self.micro_batch_per_gpu, seq_len=spec.seq_len, gpu=self.gpu
        )
        abft_seconds = spec.num_layers * attention.abft_time(optimized=True)

        return ScalePoint(
            model_name=spec.name,
            parameters=params,
            num_gpus=self.num_gpus,
            compute_seconds=compute_seconds,
            allreduce_seconds=allreduce_seconds,
            abft_seconds=abft_seconds,
        )

    def sweep(self, specs: Optional[Sequence[LargeModelSpec]] = None) -> List[ScalePoint]:
        """Evaluate all (or the default 30B/60B/100B) model sizes."""
        specs = specs if specs is not None else list(BILLION_SCALE_MODELS.values())
        return [self.evaluate(spec) for spec in specs]

"""Cost models of the individual GPU kernels.

Efficiency constants (fractions of the device peaks) and where they come from:

* ``GEMM_EFFICIENCY_LARGE`` (0.60) / ``GEMM_EFFICIENCY_SMALL`` (0.25):
  cuBLAS efficiency for large square-ish GEMMs vs. small batched per-head
  GEMMs — standard ranges for TF32 GEMMs of the paper's shapes.
* ``ENCODER_BANDWIDTH_UTILISATION`` (0.914): the paper reports its custom
  encoding kernel reaches up to **91.4 %** of the A100's memory bandwidth
  (Section 5.3 / Figure 9).
* ``CUBLAS_ENCODER_BANDWIDTH_UTILISATION`` (0.07): the paper reports cuBLAS
  achieves **less than 10 %** of bandwidth for the same batched, tall-skinny
  encoding pattern, giving the ~13x advantage of the custom kernel.
* Non-fused (non-optimised) ABFT issues each checksum update / detection as a
  separate kernel, paying one launch overhead and one extra pass over the
  operand per kernel — that is what Figure 8's "Non-OPT" bars measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perfmodel.gpu import A100_SPEC, GPUSpec, KernelLaunch, roofline_time

__all__ = [
    "GEMM_EFFICIENCY_LARGE",
    "GEMM_EFFICIENCY_SMALL",
    "ENCODER_BANDWIDTH_UTILISATION",
    "CUBLAS_ENCODER_BANDWIDTH_UTILISATION",
    "gemm_time",
    "elementwise_time",
    "checksum_encode_time_custom",
    "checksum_encode_time_cublas",
    "KernelCostModel",
]

GEMM_EFFICIENCY_LARGE = 0.60
GEMM_EFFICIENCY_SMALL = 0.25
ENCODER_BANDWIDTH_UTILISATION = 0.914
CUBLAS_ENCODER_BANDWIDTH_UTILISATION = 0.07
#: Bandwidth utilisation of simple elementwise / reduction kernels (softmax,
#: bias, dropout, detection scans): memory bound, reasonably well optimised.
ELEMENTWISE_BANDWIDTH_UTILISATION = 0.70


def gemm_time(
    m: float,
    n: float,
    k: float,
    batch: float = 1.0,
    element_size: int = 4,
    gpu: GPUSpec = A100_SPEC,
    efficiency: Optional[float] = None,
) -> float:
    """Time of a (possibly batched) ``m x k @ k x n`` GEMM.

    Efficiency defaults to the large-GEMM value when every matrix dimension is
    at least 256 and to the small/batched value otherwise (per-head attention
    GEMMs have k = d_h = 64).
    """
    if efficiency is None:
        efficiency = GEMM_EFFICIENCY_LARGE if min(m, n, k) >= 256 else GEMM_EFFICIENCY_SMALL
    flops = 2.0 * m * n * k * batch
    bytes_moved = element_size * batch * (m * k + k * n + m * n)
    launch = KernelLaunch(
        flops=flops,
        bytes=bytes_moved,
        compute_efficiency=efficiency,
        bandwidth_efficiency=ELEMENTWISE_BANDWIDTH_UTILISATION,
        launches=1,
    )
    return roofline_time(launch, gpu)


def elementwise_time(
    num_elements: float,
    passes: float = 2.0,
    flops_per_element: float = 1.0,
    element_size: int = 4,
    gpu: GPUSpec = A100_SPEC,
    launches: int = 1,
) -> float:
    """Time of a memory-bound elementwise / reduction kernel.

    ``passes`` counts how many times the data crosses the memory bus (read +
    write = 2 for a map, 1 for a pure reduction that stays in registers).
    """
    launch = KernelLaunch(
        flops=num_elements * flops_per_element,
        bytes=num_elements * passes * element_size,
        compute_efficiency=0.5,
        bandwidth_efficiency=ELEMENTWISE_BANDWIDTH_UTILISATION,
        launches=launches,
    )
    return roofline_time(launch, gpu)


def checksum_encode_time_custom(
    num_elements: float, element_size: int = 4, gpu: GPUSpec = A100_SPEC
) -> float:
    """Encoding time with ATTNChecker's fused, coalesced custom kernel.

    The kernel streams the operand once from HBM (the checksums it writes are
    negligible) at ~91.4 % of peak bandwidth (Figure 9).
    """
    launch = KernelLaunch(
        flops=4.0 * num_elements,  # two weighted accumulations per element
        bytes=num_elements * element_size,
        compute_efficiency=0.5,
        bandwidth_efficiency=ENCODER_BANDWIDTH_UTILISATION,
        launches=1,
    )
    return roofline_time(launch, gpu)


def checksum_encode_time_cublas(
    num_elements: float,
    num_blocks: float,
    element_size: int = 4,
    gpu: GPUSpec = A100_SPEC,
) -> float:
    """Encoding time when expressed as cuBLAS strided-batched GEMMs.

    The (2 x m) x (m x n) per-block shape is far outside cuBLAS's optimised
    regime: the paper measures under 10 % of memory bandwidth.  Each block
    also pays the strided-batched launch bookkeeping, modelled as one launch
    per 64 blocks.
    """
    launch = KernelLaunch(
        flops=4.0 * num_elements,
        bytes=num_elements * element_size,
        compute_efficiency=0.05,
        bandwidth_efficiency=CUBLAS_ENCODER_BANDWIDTH_UTILISATION,
        launches=max(1, int(num_blocks / 64)),
    )
    return roofline_time(launch, gpu)


@dataclass
class KernelCostModel:
    """Convenience wrapper bundling the device spec and element size."""

    gpu: GPUSpec = A100_SPEC
    element_size: int = 4

    def gemm(self, m: float, n: float, k: float, batch: float = 1.0, efficiency: Optional[float] = None) -> float:
        return gemm_time(m, n, k, batch=batch, element_size=self.element_size, gpu=self.gpu, efficiency=efficiency)

    def elementwise(self, num_elements: float, passes: float = 2.0, flops_per_element: float = 1.0, launches: int = 1) -> float:
        return elementwise_time(
            num_elements, passes=passes, flops_per_element=flops_per_element,
            element_size=self.element_size, gpu=self.gpu, launches=launches,
        )

    def encode_custom(self, num_elements: float) -> float:
        return checksum_encode_time_custom(num_elements, element_size=self.element_size, gpu=self.gpu)

    def encode_cublas(self, num_elements: float, num_blocks: float) -> float:
        return checksum_encode_time_cublas(
            num_elements, num_blocks, element_size=self.element_size, gpu=self.gpu
        )

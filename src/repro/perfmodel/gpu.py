"""GPU device specification and the roofline timing rule.

The model deliberately stays simple — three device parameters plus a
per-kernel efficiency factor — because the quantities the paper reports are
*ratios* (protected vs. unprotected time, optimised vs. non-optimised
kernels), which a roofline captures well:

``time(kernel) = launch_overhead
               + max(flops / (peak_flops * compute_eff),
                     bytes / (peak_bandwidth * bandwidth_eff))``

Compute-bound kernels (the attention GEMMs) sit on the first branch,
bandwidth-bound kernels (checksum encoding, detection scans, softmax) on the
second; tiny kernels are dominated by the launch overhead, which is exactly
why the paper fuses checksum updates into the operand GEMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "A100_SPEC", "KernelLaunch", "roofline_time"]


@dataclass(frozen=True)
class GPUSpec:
    """Device capability description.

    Attributes
    ----------
    name:
        Marketing name (informational).
    peak_flops:
        Peak throughput in FLOP/s for the arithmetic the workload uses.  The
        paper trains in single precision on A100 (19.5 TFLOP/s FP32 via CUDA
        cores; TF32 tensor cores reach 156 TFLOP/s — cuBLAS uses TF32 for the
        large GEMMs, so that is the default here).
    memory_bandwidth:
        Peak HBM bandwidth in bytes/s (A100-80GB: 2.0 TB/s, the dashed line of
        Figure 9).
    kernel_launch_overhead:
        Fixed per-kernel-launch latency in seconds (~5 microseconds is the
        commonly measured figure for CUDA kernel launches).
    memory_capacity:
        Device memory in bytes (for feasibility checks in the scale model).
    interconnect_bandwidth:
        Per-GPU all-reduce bandwidth in bytes/s (NVLink/NVSwitch class).
    """

    name: str = "A100-80GB"
    peak_flops: float = 156e12
    memory_bandwidth: float = 2.0e12
    kernel_launch_overhead: float = 5e-6
    memory_capacity: float = 80e9
    interconnect_bandwidth: float = 300e9

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("peak_flops and memory_bandwidth must be positive")
        if self.kernel_launch_overhead < 0:
            raise ValueError("kernel_launch_overhead cannot be negative")


#: Default device: NVIDIA A100 80 GB (the paper's evaluation platform).
A100_SPEC = GPUSpec()


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation described by its work and achievable efficiency."""

    flops: float = 0.0
    bytes: float = 0.0
    compute_efficiency: float = 0.8
    bandwidth_efficiency: float = 0.8
    launches: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ValueError("work cannot be negative")
        if not 0 < self.compute_efficiency <= 1 or not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("efficiencies must lie in (0, 1]")
        if self.launches < 0:
            raise ValueError("launches cannot be negative")


def roofline_time(launch: KernelLaunch, gpu: GPUSpec = A100_SPEC) -> float:
    """Execution time of one kernel under the roofline model (seconds)."""
    compute_time = launch.flops / (gpu.peak_flops * launch.compute_efficiency) if launch.flops else 0.0
    memory_time = launch.bytes / (gpu.memory_bandwidth * launch.bandwidth_efficiency) if launch.bytes else 0.0
    return launch.launches * gpu.kernel_launch_overhead + max(compute_time, memory_time)

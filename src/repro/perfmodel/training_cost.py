"""Whole-training-step cost model (per-step overheads of Figures 7, 8, 10).

A training step of a transformer fine-tuning run is priced as:

* per layer: the attention block (from :class:`AttentionCostModel`), the
  feed-forward network (two large GEMMs + GELU), two layer norms and the
  residual adds;
* embeddings and the classification head;
* the optimiser update (AdamW reads the parameter, gradient and two moment
  buffers and writes three of them — a pure bandwidth cost).

Backward is the usual 2x of forward for the dense compute.  The ABFT overhead
of a step is the per-layer ABFT detection-path time times the number of
layers (ABFT protects the forward attention GEMMs; the paper integrates the
checks into the forward kernels only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.models.config import ModelConfig
from repro.perfmodel.attention_cost import BACKWARD_MULTIPLIER, AttentionCostModel
from repro.perfmodel.gpu import A100_SPEC, GPUSpec
from repro.perfmodel.kernels import KernelCostModel

__all__ = ["TrainingStepCostModel"]

#: Bytes touched per parameter by one AdamW update (param, grad, m, v reads +
#: param, m, v writes) in fp32.
ADAMW_BYTES_PER_PARAM = 7 * 4


class TrainingStepCostModel:
    """Time model of one full fine-tuning step for one model."""

    def __init__(
        self,
        config: ModelConfig,
        batch_size: int,
        seq_len: Optional[int] = None,
        gpu: GPUSpec = A100_SPEC,
        element_size: int = 4,
    ) -> None:
        self.config = config
        self.batch_size = batch_size
        self.seq_len = seq_len if seq_len is not None else config.max_seq_len
        self.gpu = gpu
        self.element_size = element_size
        self.kernels = KernelCostModel(gpu=gpu, element_size=element_size)
        self.attention = AttentionCostModel(
            config, batch_size, seq_len=self.seq_len, gpu=gpu, element_size=element_size
        )

    # -- components --------------------------------------------------------------------

    def ffn_forward_time(self) -> float:
        """Forward time of one feed-forward block."""
        b, s = self.batch_size, self.seq_len
        d, i = self.config.hidden_size, self.config.intermediate_size
        k = self.kernels
        time = k.gemm(b * s, i, d) + k.gemm(b * s, d, i)
        time += k.elementwise(b * s * i, passes=2.0, flops_per_element=8.0)  # GELU
        return time

    def layer_other_forward_time(self) -> float:
        """Layer norms, residual adds and dropout of one layer."""
        b, s, d = self.batch_size, self.seq_len, self.config.hidden_size
        return self.kernels.elementwise(4 * b * s * d, passes=2.0, flops_per_element=4.0)

    def embedding_and_head_time(self) -> float:
        """Embedding lookups plus the classification head (forward)."""
        b, s, d = self.batch_size, self.seq_len, self.config.hidden_size
        lookup = self.kernels.elementwise(3 * b * s * d, passes=2.0, flops_per_element=0.0)
        head = self.kernels.gemm(b, d, d) + self.kernels.gemm(b, self.config.num_labels, d)
        return lookup + head

    def optimizer_time(self) -> float:
        """AdamW update over every parameter (bandwidth bound)."""
        params = self.config.parameter_count()
        return self.kernels.elementwise(
            params, passes=ADAMW_BYTES_PER_PARAM / self.element_size, flops_per_element=8.0, launches=4
        )

    # -- step time ------------------------------------------------------------------------

    def layer_forward_time(self) -> float:
        return (
            self.attention.attention_forward_time()
            + self.ffn_forward_time()
            + self.layer_other_forward_time()
        )

    def step_time(self) -> float:
        """Time of one unprotected training step (forward + backward + update)."""
        layers = self.config.num_layers
        forward = layers * self.layer_forward_time() + self.embedding_and_head_time()
        return BACKWARD_MULTIPLIER * forward + self.optimizer_time()

    def attention_step_time(self) -> float:
        """Forward + backward time of all attention blocks of the model."""
        return self.config.num_layers * self.attention.attention_step_time()

    # -- ABFT overhead -----------------------------------------------------------------------

    def abft_step_time(
        self, optimized: bool = True, frequencies: Optional[Mapping[str, float]] = None
    ) -> float:
        """ABFT time added to one training step (all layers, forward checks)."""
        return self.config.num_layers * self.attention.abft_time(
            optimized=optimized, frequencies=frequencies
        )

    def step_overhead(
        self, optimized: bool = True, frequencies: Optional[Mapping[str, float]] = None
    ) -> float:
        """Per-step ABFT overhead (the right panels of Figures 7 and 8)."""
        return self.abft_step_time(optimized=optimized, frequencies=frequencies) / self.step_time()

    def attention_overhead(
        self, optimized: bool = True, frequencies: Optional[Mapping[str, float]] = None
    ) -> float:
        """Attention-block ABFT overhead (the left panels of Figures 7 and 8)."""
        return self.abft_step_time(optimized=optimized, frequencies=frequencies) / self.attention_step_time()

    # -- section times for the adaptive optimiser -----------------------------------------------

    def section_times(self, optimized: bool = True) -> Dict[str, float]:
        """Per-section ABFT time per step (the T_S inputs of Section 4.5)."""
        breakdown = self.attention.abft_breakdown(optimized=optimized)
        return {
            name: self.config.num_layers * breakdown.section_total(name)
            for name in breakdown.encode.keys() | breakdown.update.keys() | breakdown.detect.keys()
        }

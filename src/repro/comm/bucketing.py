"""Gradient bucketing for the backward-overlapped protected all-reduce.

:class:`GradientBucketer` partitions a model's trainable parameters into
size-capped *buckets* in **reverse-registration order** — the order gradients
become available during backpropagation (the last-registered layers
back-propagate first) — so that a bucket's reduction can launch the moment
its last gradient lands while earlier layers are still back-propagating.
This is the classic DDP bucketing trick, applied to the checksum-protected
collective of :mod:`repro.comm.protected`.

Each bucket reduces as **one flat contiguous tensor**: :meth:`flatten` copies
the member gradients into a single flat buffer (missing gradients fill as
zeros, matching the unbucketed trainer's zeros-for-skipped contract) and
:meth:`unflatten` returns per-parameter reshaped views into the reduced flat
buffer.  Because the rank-ordered left fold of
:class:`~repro.comm.collective.ThreadCollective` is elementwise, reducing the
flat concatenation is **bit-identical** to reducing every member tensor
separately — the property that keeps the overlapped trainer byte-equivalent
to the phase-split one for any bucket size and worker count.

The protection story is unchanged in kind but bucket-granular in cost: the
:class:`~repro.comm.protected.ProtectedCollective` attaches one ``(1, 2)``
float64 checksum matrix per bucket (instead of one row per parameter
tensor), and a dirty verdict names a *bucket*, so ``stale_policy="reexecute"``
re-contributes only the dirty bucket's retained clean payloads.

Layering: this module sits in :mod:`repro.comm` — it operates on raw backend
arrays only (never autograd tensors) and imports nothing above
:mod:`repro.backend`, so the bucketed collective remains reusable under any
trainer.

Thread-safety / lock discipline: :class:`GradientBucketer` is immutable after
construction and :class:`BucketReadiness` is strictly per-rank (each virtual
rank is driven by exactly one worker thread at a time).  The only
worker-shared mutable state is :class:`BucketAccounting` — launch / retry
counters and the overlap timing accumulators — whose attributes
(``_launches``, ``_overlapped_launches``, ``_retries``, ``_bucket_seconds``,
``_overlap_seconds``, ``_drain_seconds``) are only touched while holding
``self._lock``; reprolint's TH001 rule checks this file.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of

__all__ = [
    "BucketSpec",
    "GradientBucketer",
    "BucketReadiness",
    "BucketAccounting",
]


@dataclass(frozen=True)
class BucketSpec:
    """Static description of one gradient bucket.

    Attributes
    ----------
    index:
        Bucket id, ``0 .. num_buckets - 1``.  Bucket 0 holds the
        *last-registered* parameters (first to finish in backward).
    param_indices:
        Positions of the member parameters in the model's registration-order
        parameter list, in reverse-registration order (flat-buffer order).
    offsets / sizes / shapes:
        Per-member slice geometry inside the flat buffer, aligned with
        ``param_indices``.
    total_size:
        Elements of the flat buffer.
    dtype:
        Canonical NumPy dtype shared by every member (buckets never mix
        dtypes — flattening across a dtype change would round member values).
    """

    index: int
    param_indices: Tuple[int, ...]
    offsets: Tuple[int, ...]
    sizes: Tuple[int, ...]
    shapes: Tuple[Tuple[int, ...], ...]
    total_size: int
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        return int(self.total_size) * int(self.dtype.itemsize)


class GradientBucketer:
    """Partition parameter arrays into size-capped flat reduction buckets.

    Parameters
    ----------
    arrays:
        The parameter arrays in **registration order** (what
        ``model.parameters()`` yields); only shapes/dtypes are read, and the
        partition walks them back-to-front so buckets fill in backward order.
    bucket_cap_mb:
        Soft size cap per bucket in MiB.  A bucket closes when adding the
        next parameter would exceed the cap — except that a single parameter
        larger than the cap still gets a (singleton) bucket of its own, so
        every parameter is always covered.  Buckets also close at dtype
        boundaries.
    """

    def __init__(self, arrays: Sequence[Any], bucket_cap_mb: float = 1.0) -> None:
        if not arrays:
            raise ValueError("cannot bucket an empty parameter list")
        if not bucket_cap_mb > 0:
            raise ValueError(f"bucket_cap_mb must be > 0, got {bucket_cap_mb}")
        self.bucket_cap_mb = float(bucket_cap_mb)
        cap_bytes = self.bucket_cap_mb * 2**20

        metas: List[Tuple[int, Tuple[int, ...], int, np.dtype]] = []
        for i, array in enumerate(arrays):
            dtype = np.dtype(backend_of(array).dtype_of(array))
            shape = tuple(int(s) for s in array.shape)
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            metas.append((i, shape, size, dtype))

        buckets: List[BucketSpec] = []
        current: List[Tuple[int, Tuple[int, ...], int, np.dtype]] = []
        current_bytes = 0.0

        def close_current() -> None:
            nonlocal current, current_bytes
            if not current:
                return
            offsets: List[int] = []
            offset = 0
            for _, _, size, _ in current:
                offsets.append(offset)
                offset += size
            buckets.append(
                BucketSpec(
                    index=len(buckets),
                    param_indices=tuple(i for i, _, _, _ in current),
                    offsets=tuple(offsets),
                    sizes=tuple(size for _, _, size, _ in current),
                    shapes=tuple(shape for _, shape, _, _ in current),
                    total_size=offset,
                    dtype=current[0][3],
                )
            )
            current = []
            current_bytes = 0.0

        # Reverse-registration walk: backward produces these gradients first.
        for meta in reversed(metas):
            _, _, size, dtype = meta
            nbytes = size * dtype.itemsize
            if current and (
                dtype != current[0][3] or current_bytes + nbytes > cap_bytes
            ):
                close_current()
            current.append(meta)
            current_bytes += nbytes
        close_current()

        self.buckets: Tuple[BucketSpec, ...] = tuple(buckets)
        self.num_params = len(metas)
        #: registration-order parameter index -> owning bucket id.
        self.param_to_bucket: Dict[int, int] = {
            pi: spec.index for spec in self.buckets for pi in spec.param_indices
        }

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GradientBucketer(params={self.num_params}, "
            f"buckets={self.num_buckets}, cap={self.bucket_cap_mb}MiB)"
        )

    # -- flat-buffer conversion ------------------------------------------------------

    def flatten(self, bucket: int, grads: Sequence[Optional[Any]], xp: Any) -> Any:
        """Copy bucket ``bucket``'s member gradients into one flat buffer.

        ``grads`` is the full registration-order gradient list (entries may
        be ``None`` for parameters the backward pass skipped — their slices
        fill with zeros, the same zeros-for-skipped contract as the
        unbucketed trainer's payload).  The copy is a pure value-preserving
        concatenation, so the rank-ordered elementwise fold over the flat
        buffer is bit-identical to folding every member separately.
        """
        spec = self.buckets[bucket]
        flat = xp.empty((spec.total_size,), dtype=getattr(xp, spec.dtype.name))
        members = [grads[pi] for pi in spec.param_indices]
        if all(g is not None for g in members):
            # Common case: one C-level pass instead of a per-member slice
            # loop.  ``reshape`` is a view for the contiguous arrays backward
            # produces, so the only copy is the write into ``flat``.
            try:
                xp.concatenate([xp.reshape(g, (-1,)) for g in members], out=flat)
                return flat
            except TypeError:  # namespace without concatenate(out=) support
                pass
        for pi, offset, size in zip(spec.param_indices, spec.offsets, spec.sizes):
            grad = grads[pi]
            if grad is None:
                flat[offset : offset + size] = 0.0
            else:
                flat[offset : offset + size] = xp.reshape(grad, (-1,))
        return flat

    def unflatten(self, bucket: int, flat: Any) -> Dict[int, Any]:
        """Per-parameter reshaped views into a reduced flat bucket buffer.

        Returns ``{registration-order param index: view}``.  The views share
        the reduced buffer's memory — consumers (clipping, the optimizer)
        only read gradients, exactly as they only read the shared reduced
        arrays of the unbucketed path.
        """
        spec = self.buckets[bucket]
        out: Dict[int, Any] = {}
        for pi, offset, size, shape in zip(
            spec.param_indices, spec.offsets, spec.sizes, spec.shapes
        ):
            out[pi] = flat[offset : offset + size].reshape(shape)
        return out

    def tracker(self) -> "BucketReadiness":
        """A fresh per-rank readiness tracker over this partition."""
        return BucketReadiness(self)


class BucketReadiness:
    """Per-rank gradient-readiness bookkeeping for one backward pass.

    Strictly single-threaded by construction: one virtual rank is driven by
    exactly one worker thread at a time, and each rank owns its own tracker.
    ``mark(param_index)`` records one landed gradient and returns the bucket
    id when it was the bucket's *last* missing member — the launch trigger of
    the overlapped trainer.
    """

    def __init__(self, bucketer: GradientBucketer) -> None:
        self._bucketer = bucketer
        self._remaining: List[int] = [len(s.param_indices) for s in bucketer.buckets]
        self._seen: set = set()

    def mark(self, param_index: int) -> Optional[int]:
        """Record ``param_index``'s gradient as accumulated.

        Returns the completed bucket id if this was the last pending member,
        else ``None``.  Marking the same parameter twice in one attempt is an
        error — it would mean a bucket launched on a half-accumulated
        gradient.
        """
        if param_index in self._seen:
            raise RuntimeError(
                f"parameter {param_index} marked ready twice in one backward pass"
            )
        self._seen.add(param_index)
        bucket = self._bucketer.param_to_bucket[param_index]
        self._remaining[bucket] -= 1
        if self._remaining[bucket] == 0:
            return bucket
        return None

    def pending(self) -> List[int]:
        """Bucket ids not yet complete, ascending — finalized with zero fills
        after backward (parameters the loss did not reach)."""
        return [i for i, left in enumerate(self._remaining) if left > 0]

    def reset(self) -> None:
        """Start a fresh attempt (a re-executed shard restarts readiness)."""
        self._remaining = [
            len(s.param_indices) for s in self._bucketer.buckets
        ]
        self._seen.clear()


class BucketAccounting:
    """Worker-shared launch / retry counters and overlap timing accumulators.

    Shared across every worker thread of the data-parallel trainer; all
    mutable attributes are touched only under ``self._lock`` (TH001).  The
    trainer folds :meth:`pop_step_seconds` into its timer registry between
    steps and exposes :meth:`counters` for the counter-verified tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Worker-shared accounting below: touch only under ``with self._lock``.
        self._launches = 0
        self._overlapped_launches = 0
        self._retries: Dict[int, int] = {}
        self._bucket_seconds = 0.0
        self._overlap_seconds = 0.0
        self._drain_seconds = 0.0

    def record_launch(self, rank: int, bucket: int, during_backward: bool) -> None:
        with self._lock:
            self._launches += 1
            if during_backward:
                self._overlapped_launches += 1

    def record_retry(self, bucket: int) -> None:
        with self._lock:
            self._retries[bucket] = self._retries.get(bucket, 0) + 1

    def add_bucket_seconds(self, seconds: float) -> None:
        """Flatten / unflatten bookkeeping time (the ``comm/bucket`` key)."""
        with self._lock:
            self._bucket_seconds += seconds

    def add_overlap_seconds(self, seconds: float) -> None:
        """Backward wall time with a reduction in flight (``comm/overlap``)."""
        with self._lock:
            self._overlap_seconds += seconds

    def add_drain_seconds(self, seconds: float) -> None:
        """Post-backward time draining bucket reductions (``comm/drain``)."""
        with self._lock:
            self._drain_seconds += seconds

    def counters(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bucket_launches": self._launches,
                "overlapped_launches": self._overlapped_launches,
                "bucket_retries": dict(self._retries),
            }

    def pop_step_seconds(self) -> Dict[str, float]:
        """Return and zero the per-step timing accumulators."""
        with self._lock:
            out = {
                "bucket": self._bucket_seconds,
                "overlap": self._overlap_seconds,
                "drain": self._drain_seconds,
            }
            self._bucket_seconds = 0.0
            self._overlap_seconds = 0.0
            self._drain_seconds = 0.0
        return out

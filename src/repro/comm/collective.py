"""In-process collectives with a deterministic rank-ordered reduction.

The :class:`Collective` interface deliberately splits every collective into a
non-blocking *contribute* phase and a blocking *finish* phase.  The split is
what lets one OS thread own several virtual ranks: it deposits every rank's
contribution first and only then blocks for the reduction, so a world of R
ranks runs correctly on any number of worker threads from 1 to R.  The
convenience :meth:`Collective.all_reduce` is just ``contribute`` + ``finish``
and is what a one-rank-per-thread worker calls.

Determinism contract: the reduction is a left fold in ascending rank order
over the deposited contributions, performed exactly once per key by whichever
caller observes the rendezvous complete.  Identical contributions therefore
produce bit-identical reductions regardless of thread count or arrival order
— the property the N-worker vs 1-worker byte-equivalence test pins.

Thread-safety / lock discipline: all worker-shared state of
:class:`ThreadCollective` (``_entries``, ``_results``, ``_fetched``,
``_failure``, ``_closed``) is only touched while holding ``self._cv`` —
the same ``with self._cv`` discipline the async verification engine uses,
and reprolint's TH001 rule now checks this file too.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend import namespace_of

__all__ = ["Collective", "CollectiveError", "CollectiveClosed", "ThreadCollective"]

#: Reduction operators: both fold in ascending rank order; ``mean`` divides
#: the rank-ordered sum by the world size afterwards (``* (1/world)``, which
#: is bit-exact identity for a world of one).
REDUCE_OPS = ("sum", "mean")


class CollectiveError(RuntimeError):
    """A peer rank failed mid-collective; the rendezvous was poisoned."""


class CollectiveClosed(CollectiveError):
    """The collective was closed while ranks were still blocked in it."""


def _validate_rank(rank: int, world_size: int) -> None:
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")


class Collective:
    """Abstract collective over ``world_size`` virtual ranks.

    Payloads are *sequences* of arrays (one entry per gradient tensor), so a
    training step pays one rendezvous per step rather than one per parameter.
    """

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)

    # -- two-phase interface ---------------------------------------------------------

    def contribute(self, key: str, rank: int, arrays: Sequence[Any]) -> None:
        """Deposit ``rank``'s contribution for collective ``key`` (non-blocking)."""
        raise NotImplementedError

    def finish(self, key: str, rank: int) -> List[Any]:
        """Block until every rank contributed to ``key``; return the reduction."""
        raise NotImplementedError

    # -- convenience collectives -----------------------------------------------------

    def all_reduce(self, key: str, rank: int, arrays: Sequence[Any]) -> List[Any]:
        """Reduce ``arrays`` across all ranks; every rank gets the same result."""
        self.contribute(key, rank, arrays)
        return self.finish(key, rank)

    def broadcast(
        self, key: str, rank: int, arrays: Optional[Sequence[Any]] = None, root: int = 0
    ) -> List[Any]:
        """Distribute ``root``'s arrays to every rank (one deposit, R fetches)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any blocked ranks with :class:`CollectiveClosed`."""

    def poison(self, exc: BaseException) -> None:
        """Fail every pending and future rendezvous with ``exc`` as the cause."""


def _reduce_rank_ordered(
    contributions: List[Sequence[Any]], op: str, copy: Callable[[Any], Any]
) -> List[Any]:
    """Left-fold the per-rank contributions in ascending rank order."""
    widths = {len(c) for c in contributions}
    if len(widths) != 1:
        raise CollectiveError(f"ranks contributed different array counts: {sorted(widths)}")
    reduced: List[Any] = [copy(a) for a in contributions[0]]
    for contribution in contributions[1:]:
        for i, array in enumerate(contribution):
            reduced[i] += array
    if op == "mean":
        world = len(contributions)
        scale = 1.0 / world
        for i, array in enumerate(reduced):
            reduced[i] = array * scale
    return reduced


class ThreadCollective(Collective):
    """Shared-memory rendezvous collective for thread (or serial) workers.

    Contributions are copied on deposit — the deposited buffer models the
    "send buffer" handed to a communication library, which is exactly where
    the collective fault injector strikes — and the reduction runs once,
    under the condition variable, in ascending rank order.

    Parameters
    ----------
    world_size:
        Number of virtual ranks that must contribute to each key.
    op:
        ``"sum"`` or ``"mean"`` (rank-ordered sum scaled by ``1/world``).
    fault_hook:
        Optional ``hook(key, rank, arrays)`` invoked on the deposited copy of
        each contribution (after any caller-side checksumming): the seam the
        per-rank deterministic collective fault injector plugs into.
    """

    def __init__(
        self,
        world_size: int,
        op: str = "mean",
        fault_hook: Optional[Callable[[str, int, List[Any]], None]] = None,
    ) -> None:
        super().__init__(world_size)
        if op not in REDUCE_OPS:
            raise ValueError(f"op must be one of {REDUCE_OPS}, got {op!r}")
        self.op = op
        self.fault_hook = fault_hook
        self._cv = threading.Condition()
        # Worker-shared state below: touch only under ``with self._cv``.
        self._entries: Dict[str, Dict[int, List[Any]]] = {}
        self._results: Dict[str, List[Any]] = {}
        self._fetched: Dict[str, int] = {}
        self._failure: Optional[BaseException] = None
        self._closed = False

    # -- deposit / reduce ------------------------------------------------------------

    @staticmethod
    def _copy(array: Any) -> Any:
        xp = namespace_of(array)
        return xp.array(array, copy=True)

    def contribute(self, key: str, rank: int, arrays: Sequence[Any]) -> None:
        _validate_rank(rank, self.world_size)
        deposited = [self._copy(a) for a in arrays]
        if self.fault_hook is not None:
            self.fault_hook(key, rank, deposited)
        with self._cv:
            self._raise_if_failed_locked()
            slots = self._entries.setdefault(key, {})
            if rank in slots:
                raise CollectiveError(f"rank {rank} contributed twice to {key!r}")
            slots[rank] = deposited
            if len(slots) == self.world_size:
                self._cv.notify_all()

    def finish(self, key: str, rank: int) -> List[Any]:
        _validate_rank(rank, self.world_size)
        with self._cv:
            while True:
                self._raise_if_failed_locked()
                if key in self._results:
                    return self._take_result_locked(key)
                slots = self._entries.get(key)
                if slots is not None and len(slots) == self.world_size:
                    # First rank to observe the full rendezvous reduces, in
                    # ascending rank order; peers pick the result up below.
                    contributions = [slots[r] for r in sorted(slots)]
                    self._results[key] = _reduce_rank_ordered(
                        contributions, self.op, self._copy
                    )
                    self._fetched[key] = 0
                    del self._entries[key]
                    self._cv.notify_all()
                    return self._take_result_locked(key)
                self._cv.wait()

    def _take_result_locked(self, key: str) -> List[Any]:
        result = self._results[key]
        self._fetched[key] += 1
        if self._fetched[key] == self.world_size:
            del self._results[key]
            del self._fetched[key]
        return result

    # -- broadcast -------------------------------------------------------------------

    def broadcast(
        self, key: str, rank: int, arrays: Optional[Sequence[Any]] = None, root: int = 0
    ) -> List[Any]:
        _validate_rank(rank, self.world_size)
        _validate_rank(root, self.world_size)
        key = f"{key}@bcast"
        with self._cv:
            self._raise_if_failed_locked()
            if rank == root:
                if arrays is None:
                    raise ValueError(f"root rank {root} must supply arrays to broadcast")
                if key not in self._results:
                    self._results[key] = [self._copy(a) for a in arrays]
                    self._fetched[key] = 0
                    self._cv.notify_all()
            while key not in self._results:
                self._raise_if_failed_locked()
                self._cv.wait()
            return self._take_result_locked(key)

    # -- failure propagation ---------------------------------------------------------

    def _raise_if_failed_locked(self) -> None:
        if self._failure is not None:
            raise CollectiveError("a peer rank failed") from self._failure
        if self._closed:
            raise CollectiveClosed("collective is closed")

    def poison(self, exc: BaseException) -> None:
        with self._cv:
            if self._failure is None:
                self._failure = exc
            self._cv.notify_all()

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._entries.clear()
            self._results.clear()
            self._fetched.clear()
            self._cv.notify_all()

"""In-process collectives with a deterministic rank-ordered reduction.

The :class:`Collective` interface deliberately splits every collective into a
non-blocking *contribute* phase and a blocking *finish* phase.  The split is
what lets one OS thread own several virtual ranks: it deposits every rank's
contribution first and only then blocks for the reduction, so a world of R
ranks runs correctly on any number of worker threads from 1 to R.  The
convenience :meth:`Collective.all_reduce` is just ``contribute`` + ``finish``
and is what a one-rank-per-thread worker calls.

Determinism contract: the reduction is a left fold in ascending rank order
over the deposited contributions, performed exactly once per key by whichever
caller observes the rendezvous complete.  Identical contributions therefore
produce bit-identical reductions regardless of thread count or arrival order
— the property the N-worker vs 1-worker byte-equivalence test pins.  With
``eager_reduce=True`` the fold runs inside the *last* ``contribute`` call
instead of lazily in ``finish`` — same fold, same order, bit-identical
result — so a reduction completed mid-backward (the overlapped trainer's
bucket launches) does its work while backprop continues, rather than
deferring it to the post-backward drain.

Thread-safety / lock discipline: all worker-shared state of
:class:`ThreadCollective` (``_entries``, ``_results``, ``_fetched``,
``_failure``, ``_closed``) is only touched while holding ``self._cv`` —
the same ``with self._cv`` discipline the async verification engine uses,
and reprolint's TH001 rule now checks this file too.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend import namespace_of

__all__ = ["Collective", "CollectiveError", "CollectiveClosed", "ThreadCollective"]

#: Reduction operators: both fold in ascending rank order; ``mean`` divides
#: the rank-ordered sum by the world size afterwards (``* (1/world)``, which
#: is bit-exact identity for a world of one).
REDUCE_OPS = ("sum", "mean")


class CollectiveError(RuntimeError):
    """A peer rank failed mid-collective; the rendezvous was poisoned."""


class CollectiveClosed(CollectiveError):
    """The collective was closed while ranks were still blocked in it."""


def _validate_rank(rank: int, world_size: int) -> None:
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")


class Collective:
    """Abstract collective over ``world_size`` virtual ranks.

    Payloads are *sequences* of arrays (one entry per gradient tensor), so a
    training step pays one rendezvous per step rather than one per parameter.
    """

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)

    # -- two-phase interface ---------------------------------------------------------

    def contribute(self, key: str, rank: int, arrays: Sequence[Any]) -> None:
        """Deposit ``rank``'s contribution for collective ``key`` (non-blocking)."""
        raise NotImplementedError

    def finish(self, key: str, rank: int) -> List[Any]:
        """Block until every rank contributed to ``key``; return the reduction."""
        raise NotImplementedError

    # -- convenience collectives -----------------------------------------------------

    def all_reduce(self, key: str, rank: int, arrays: Sequence[Any]) -> List[Any]:
        """Reduce ``arrays`` across all ranks; every rank gets the same result."""
        self.contribute(key, rank, arrays)
        return self.finish(key, rank)

    def broadcast(
        self, key: str, rank: int, arrays: Optional[Sequence[Any]] = None, root: int = 0
    ) -> List[Any]:
        """Distribute ``root``'s arrays to every rank (one deposit, R fetches)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any blocked ranks with :class:`CollectiveClosed`."""

    def poison(self, exc: BaseException) -> None:
        """Fail every pending and future rendezvous with ``exc`` as the cause."""


def _reduce_rank_ordered(
    contributions: List[Sequence[Any]],
    op: str,
    copy: Optional[Callable[[Any], Any]],
) -> List[Any]:
    """Left-fold the per-rank contributions in ascending rank order.

    ``copy=None`` accumulates straight into rank 0's arrays (caller asserts
    ownership of the deposits); otherwise rank 0 is copied first so deposits
    stay pristine.  Both variants run the identical elementwise adds and
    scale, so the folded bytes do not depend on the mode.
    """
    widths = {len(c) for c in contributions}
    if len(widths) != 1:
        raise CollectiveError(f"ranks contributed different array counts: {sorted(widths)}")
    if copy is None:
        reduced: List[Any] = list(contributions[0])
    else:
        reduced = [copy(a) for a in contributions[0]]
    for contribution in contributions[1:]:
        for i, array in enumerate(contribution):
            reduced[i] += array
    if op == "mean":
        world = len(contributions)
        scale = 1.0 / world
        for i, array in enumerate(reduced):
            # In place: ``reduced`` always owns its arrays here (rank-0 copy
            # or consumed deposit), and ``*=`` is the same elementwise
            # multiply — no temporary, identical bits.
            array *= scale
    return reduced


class ThreadCollective(Collective):
    """Shared-memory rendezvous collective for thread (or serial) workers.

    Contributions are copied on deposit only when a ``fault_hook`` is
    installed — the deposited buffer then models the "send buffer" handed to
    a communication library, which is exactly where the collective fault
    injector strikes, and the hook must never corrupt the caller's live
    arrays.  On the hookless path the deposit aliases the caller's arrays:
    the rank-ordered left fold only *reads* deposits (it copies the rank-0
    entry before accumulating), so no defensive copy is needed.  Callers in
    turn must not mutate contributed arrays before the key's reduction
    completes.  ``deposit_copies()`` counts the copies actually made, so the
    zero-copy claim is testable.

    Parameters
    ----------
    world_size:
        Number of virtual ranks that must contribute to each key.
    op:
        ``"sum"`` or ``"mean"`` (rank-ordered sum scaled by ``1/world``).
    fault_hook:
        Optional ``hook(key, rank, arrays)`` invoked on the deposited copy of
        each contribution (after any caller-side checksumming): the seam the
        per-rank deterministic collective fault injector plugs into.
    eager_reduce:
        When true, the last contributing rank performs the fold inside
        ``contribute`` instead of deferring it to ``finish``.  Bit-identical
        (same rank-ordered fold); used by the overlapped trainer so bucket
        reductions complete while backprop continues.
    """

    def __init__(
        self,
        world_size: int,
        op: str = "mean",
        fault_hook: Optional[Callable[[str, int, List[Any]], None]] = None,
        eager_reduce: bool = False,
        consume_deposits: bool = False,
    ) -> None:
        super().__init__(world_size)
        if op not in REDUCE_OPS:
            raise ValueError(f"op must be one of {REDUCE_OPS}, got {op!r}")
        self.op = op
        self.fault_hook = fault_hook
        self.eager_reduce = bool(eager_reduce)
        self.consume_deposits = bool(consume_deposits)
        self._cv = threading.Condition()
        # Worker-shared state below: touch only under ``with self._cv``.
        self._entries: Dict[str, Dict[int, List[Any]]] = {}
        self._results: Dict[str, List[Any]] = {}
        self._fetched: Dict[str, int] = {}
        self._deposit_copies = 0
        self._failure: Optional[BaseException] = None
        self._closed = False

    # -- deposit / reduce ------------------------------------------------------------

    @staticmethod
    def _copy(array: Any) -> Any:
        xp = namespace_of(array)
        return xp.array(array, copy=True)

    def contribute(self, key: str, rank: int, arrays: Sequence[Any]) -> None:
        _validate_rank(rank, self.world_size)
        if self.fault_hook is not None:
            # The hook mutates its input in place (that is the fault model),
            # so it gets a defensive copy; hookless deposits alias the
            # caller's arrays because the fold only reads them.
            deposited = [self._copy(a) for a in arrays]
            copies = len(deposited)
            self.fault_hook(key, rank, deposited)
        else:
            deposited = list(arrays)
            copies = 0
        with self._cv:
            self._raise_if_failed_locked()
            self._deposit_copies += copies
            slots = self._entries.setdefault(key, {})
            if rank in slots:
                raise CollectiveError(f"rank {rank} contributed twice to {key!r}")
            slots[rank] = deposited
            if len(slots) == self.world_size:
                if self.eager_reduce:
                    # Last contributor folds immediately so the reduction
                    # overlaps whatever the other ranks are still computing.
                    self._reduce_ready_locked(key)
                else:
                    self._cv.notify_all()

    def finish(self, key: str, rank: int) -> List[Any]:
        _validate_rank(rank, self.world_size)
        with self._cv:
            while True:
                self._raise_if_failed_locked()
                if key in self._results:
                    return self._take_result_locked(key)
                slots = self._entries.get(key)
                if slots is not None and len(slots) == self.world_size:
                    # First rank to observe the full rendezvous reduces, in
                    # ascending rank order; peers pick the result up below.
                    self._reduce_ready_locked(key)
                    return self._take_result_locked(key)
                self._cv.wait()

    def _reduce_ready_locked(self, key: str) -> None:
        """Fold ``key``'s complete rendezvous; caller holds ``_cv``."""
        slots = self._entries[key]
        contributions = [slots[r] for r in sorted(slots)]
        # Hooked deposits are collective-owned copies, and consume_deposits
        # is the caller's promise that contributed arrays are scratch: either
        # way the fold may accumulate straight into rank 0's entry, skipping
        # the defensive copy (one full memory pass over the payload).
        copy = None if (self.consume_deposits or self.fault_hook is not None) else self._copy
        self._results[key] = _reduce_rank_ordered(contributions, self.op, copy)
        self._fetched[key] = 0
        del self._entries[key]
        self._cv.notify_all()

    def deposit_copies(self) -> int:
        """Total send-buffer copies made on deposit since construction."""
        with self._cv:
            return self._deposit_copies

    def _take_result_locked(self, key: str) -> List[Any]:
        result = self._results[key]
        self._fetched[key] += 1
        if self._fetched[key] == self.world_size:
            del self._results[key]
            del self._fetched[key]
        return result

    # -- broadcast -------------------------------------------------------------------

    def broadcast(
        self, key: str, rank: int, arrays: Optional[Sequence[Any]] = None, root: int = 0
    ) -> List[Any]:
        _validate_rank(rank, self.world_size)
        _validate_rank(root, self.world_size)
        key = f"{key}@bcast"
        with self._cv:
            self._raise_if_failed_locked()
            if rank == root:
                if arrays is None:
                    raise ValueError(f"root rank {root} must supply arrays to broadcast")
                if key not in self._results:
                    self._results[key] = [self._copy(a) for a in arrays]
                    self._fetched[key] = 0
                    self._cv.notify_all()
            while key not in self._results:
                self._raise_if_failed_locked()
                self._cv.wait()
            return self._take_result_locked(key)

    # -- failure propagation ---------------------------------------------------------

    def _raise_if_failed_locked(self) -> None:
        if self._failure is not None:
            raise CollectiveError("a peer rank failed") from self._failure
        if self._closed:
            raise CollectiveClosed("collective is closed")

    def poison(self, exc: BaseException) -> None:
        with self._cv:
            if self._failure is None:
                self._failure = exc
            self._cv.notify_all()

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._entries.clear()
            self._results.clear()
            self._fetched.clear()
            self._cv.notify_all()

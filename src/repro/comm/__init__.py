"""Checksum-protected collective communication for data-parallel training.

``collective``
    The :class:`Collective` abstraction (``all_reduce`` / ``broadcast``,
    plus the non-blocking ``contribute`` / blocking ``finish`` split that
    lets one OS thread drive several virtual ranks without deadlocking) and
    :class:`ThreadCollective`, the in-process rendezvous implementation with
    a deterministic rank-ordered reduction.
``protected``
    :class:`ProtectedCollective`, which wraps any :class:`Collective` and
    attaches float64 gradient checksums to every contribution.  Checksums
    are linear, so the reduction of per-rank checksums must equal the
    checksum of the reduced gradient — corruption introduced in or between
    the steps of the collective breaks that identity and is detected at
    ``finish`` time (:class:`DirtyReductionError`).
``bucketing``
    :class:`GradientBucketer` and friends: reverse-registration-order,
    size-capped gradient buckets reduced as flat contiguous tensors, the
    substrate of the backward-overlapped trainer.  Bit-identity of the
    bucketed fold to the per-tensor fold is the module's core contract.

Layering: this package sits beside ``repro.backend`` — it may import the
backend seam and ``repro.utils`` but nothing above (no ``core``, ``nn``,
``training``); ``reprolint``'s LY001 rule enforces this.
"""

from repro.comm.bucketing import (
    BucketAccounting,
    BucketReadiness,
    BucketSpec,
    GradientBucketer,
)
from repro.comm.collective import (
    Collective,
    CollectiveClosed,
    CollectiveError,
    ThreadCollective,
)
from repro.comm.protected import (
    DirtyReductionError,
    ProtectedCollective,
    gradient_checksum,
    gradient_checksums,
)

__all__ = [
    "BucketAccounting",
    "BucketReadiness",
    "BucketSpec",
    "Collective",
    "CollectiveClosed",
    "CollectiveError",
    "GradientBucketer",
    "DirtyReductionError",
    "ProtectedCollective",
    "ThreadCollective",
    "gradient_checksum",
    "gradient_checksums",
]

"""Checksum-protected collectives: ABFT across the gradient all-reduce.

The protection trick is the linearity of the Huang–Abraham checksum
functionals already used for the attention GEMMs: for the two float64
functionals ``c1(g) = sum(g)`` and ``c2(g) = sum(g * w)`` (``w`` the 1-based
arange encoding vector),

    ``c(sum_r g_r) == sum_r c(g_r)``

holds up to float64 rounding.  Each rank therefore attaches the checksums of
its *contribution*, the checksums ride through the same reduction as the
payload, and at ``finish`` time the checksum of the reduced gradient is
recomputed and compared against the reduced checksums.  Corruption striking
any single contribution in or between the steps of the collective breaks the
identity for the affected tensor and is reported as a
:class:`DirtyReductionError` naming the dirty tensor indices — without any
rank-to-rank comparison of the payloads themselves.

Dispatch accounting mirrors the attention engine's counter-verified style:
``checksum_encodes`` (one per tensor per rank per reduction),
``checksum_verifies`` (one recompute per tensor per reduction) and
``mismatches`` are matched against
``SectionCostModel.collective_checksum_dispatches_per_step`` in tests and in
``BENCH_fig12.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of, namespace_of
from repro.comm.collective import Collective
from repro.utils.timing import TimingRegistry

__all__ = [
    "gradient_checksum",
    "gradient_checksums",
    "DirtyReductionError",
    "ProtectedCollective",
]

#: Cache of the float64 arange encoding vectors, keyed by (namespace, length).
#: Mirrors the checksum-weights cache of the attention engine: the vectors
#: are tiny, immutable and reused every step.
_ENCODING_VECTORS: Dict[Tuple[int, int], Any] = {}


def _encoding_vector(xp: Any, length: int) -> Any:
    key = (id(xp), length)
    vector = _ENCODING_VECTORS.get(key)
    if vector is None:
        vector = xp.arange(1, length + 1, dtype=xp.float64)
        _ENCODING_VECTORS[key] = vector
    return vector


def gradient_checksum(array: Any) -> Any:
    """The ``(2,)`` float64 checksum of one gradient tensor.

    ``[0]`` is the plain sum, ``[1]`` the 1-based arange-weighted sum — the
    two linear functionals of the paper's checksum encoding, flattened over
    the tensor.  Linearity is what makes the pair reduction-transparent.
    """
    xp = namespace_of(array)
    flat = xp.reshape(array, (-1,))
    flat64 = flat.astype(xp.float64) if flat.dtype != xp.float64 else flat
    weights = _encoding_vector(xp, int(flat.shape[0]))
    out = xp.zeros((2,), dtype=xp.float64)
    out[0] = flat64.sum()
    out[1] = (flat64 * weights).sum()
    return out


def gradient_checksums(arrays: Sequence[Any]) -> Any:
    """Stacked ``(len(arrays), 2)`` float64 checksums of a gradient list."""
    if not arrays:
        raise ValueError("cannot checksum an empty gradient list")
    xp = namespace_of(arrays[0])
    if len(arrays) == 1:
        # Single-tensor payloads (flat gradient buckets) are the hot path of
        # the overlapped trainer: skip the stack dispatch.
        return xp.reshape(gradient_checksum(arrays[0]), (1, 2))
    return xp.stack([gradient_checksum(a) for a in arrays])


class DirtyReductionError(RuntimeError):
    """The reduced checksums disagree with the checksum of the reduction.

    Attributes
    ----------
    key:
        The collective key whose reduction failed verification.
    dirty_indices:
        Indices (into the contributed array list) of the tensors whose
        checksum identity broke.
    reduced:
        The (corrupt) reduced arrays, so a ``record``-policy caller can still
        proceed with them after counting the detection.
    """

    def __init__(self, key: str, dirty_indices: List[int], reduced: List[Any]) -> None:
        super().__init__(
            f"dirty reduction for {key!r}: checksum mismatch on tensor(s) "
            f"{dirty_indices}"
        )
        self.key = key
        self.dirty_indices = dirty_indices
        self.reduced = reduced


class ProtectedCollective(Collective):
    """Wrap a :class:`Collective` with checksummed all-reduce verification.

    Every payload contribution is extended with its ``(n, 2)`` float64
    checksum matrix; payload and checksums ride the same inner reduction, so
    any linear inner op keeps the identity (for ``mean`` both sides of the
    comparison are scaled alike).

    ``comm/allreduce`` (inner rendezvous + reduction) and ``comm/verify``
    (checksum encode + recompute + compare) are accumulated internally by the
    per-rank worker threads and folded into a shared
    :class:`TimingRegistry` from the coordinator via :meth:`fold_timers`.

    Worker-shared counter state (``_checksum_encodes``, ``_checksum_verifies``,
    ``_mismatches``, ``_verify_seconds``, ``_allreduce_seconds``) is only
    touched under ``self._lock``; reprolint's TH001 rule checks this file.
    """

    #: Relative / absolute tolerance of the linearity comparison.  float64
    #: checksums of float64 gradients agree to ~1e-15 relative; injected
    #: faults (exponent flips, INF/NaN, unit-scale deltas) sit many orders of
    #: magnitude above this line.
    rtol = 1e-6
    atol = 1e-9
    #: Safety factor of the dtype-aware reduction slack (see
    #: :meth:`_dirty_rows`): the inner reduction folds in the *payload's*
    #: arithmetic, so lower-precision payloads (fp32/fp16 gradients) round
    #: each fold step by their own machine epsilon while the checksums ride
    #: in float64.  The slack bounds that legitimate drift by
    #: ``(world-1) * eps(payload dtype) * slack_factor * checksum(|reduced|)``
    #: — negligible for float64 payloads, and still orders of magnitude below
    #: injected faults for half precision.
    slack_factor = 8.0

    def __init__(self, inner: Collective, timers: Optional[TimingRegistry] = None) -> None:
        super().__init__(inner.world_size)
        self.inner = inner
        self.timers = timers
        self._lock = threading.Lock()
        # Worker-shared accounting below: touch only under ``with self._lock``.
        self._checksum_encodes = 0
        self._checksum_verifies = 0
        self._mismatches = 0
        self._verify_seconds = 0.0
        self._allreduce_seconds = 0.0
        self._verdicts: Dict[str, List[int]] = {}
        self._verdict_fetches: Dict[str, int] = {}

    # -- two-phase protected all-reduce ----------------------------------------------

    def contribute(self, key: str, rank: int, arrays: Sequence[Any]) -> None:
        arrays = list(arrays)
        begin = time.perf_counter()
        checksums = gradient_checksums(arrays)
        verify_elapsed = time.perf_counter() - begin
        begin = time.perf_counter()
        self.inner.contribute(key, rank, arrays + [checksums])
        reduce_elapsed = time.perf_counter() - begin
        with self._lock:
            self._checksum_encodes += len(arrays)
            self._verify_seconds += verify_elapsed
            self._allreduce_seconds += reduce_elapsed

    def finish(self, key: str, rank: int) -> List[Any]:
        begin = time.perf_counter()
        reduced = self.inner.finish(key, rank)
        reduce_elapsed = time.perf_counter() - begin
        payload, reduced_checksums = reduced[:-1], reduced[-1]
        begin = time.perf_counter()
        with self._lock:
            # The reduction is shared, so its verdict is too: the first rank
            # through verifies once, peers pick the cached verdict up — the
            # per-step verify count stays one recompute per tensor.
            if key not in self._verdicts:
                self._verdicts[key] = self._dirty_rows(payload, reduced_checksums)
                self._verdict_fetches[key] = 0
                self._checksum_verifies += len(payload)
                self._mismatches += len(self._verdicts[key])
            dirty_rows = self._verdicts[key]
            self._verdict_fetches[key] += 1
            if self._verdict_fetches[key] == self.world_size:
                del self._verdicts[key]
                del self._verdict_fetches[key]
            self._verify_seconds += time.perf_counter() - begin
            self._allreduce_seconds += reduce_elapsed
        if dirty_rows:
            raise DirtyReductionError(key, dirty_rows, payload)
        return payload

    def _dirty_rows(self, payload: List[Any], reduced_checksums: Any) -> List[int]:
        """Indices of payload tensors whose checksum identity broke."""
        recomputed = gradient_checksums(payload)
        xp = namespace_of(recomputed)
        # NaN/INF-safe comparison.  The relative bound is only meaningful for
        # finite checksums — a non-finite recomputed checksum would make the
        # bound itself INF and let ``inf <= inf`` pass as clean.  Instead:
        # finite-vs-finite compares within tolerance; non-finite on *both*
        # sides is unverifiable (NaN/INF absorb the linear functionals — e.g.
        # a legitimately non-finite shard loss) and treated as clean;
        # non-finiteness on one side only is exactly what an injected
        # INF/NaN produces and counts as a mismatch.
        finite = xp.isfinite(reduced_checksums) & xp.isfinite(recomputed)
        delta = xp.abs(reduced_checksums - recomputed)
        bound = self.atol + self.rtol * (xp.abs(reduced_checksums) + xp.abs(recomputed))
        # Dtype-aware slack: the signed checksums cancel, so the relative
        # bound alone underestimates how much rounding the inner fold was
        # allowed — the checksum of |reduced| is the right scale for it.
        slack = xp.zeros_like(recomputed)
        for i, array in enumerate(payload):
            dtype = backend_of(array).dtype_of(array)
            if not np.issubdtype(dtype, np.floating):
                continue
            eps = float(np.finfo(dtype).eps)
            slack[i] = (
                (self.world_size - 1) * eps * self.slack_factor
                * gradient_checksum(xp.abs(array))
            )
        bound = bound + slack
        within = xp.less_equal(delta, bound)
        both_nonfinite = ~xp.isfinite(reduced_checksums) & ~xp.isfinite(recomputed)
        clean = (finite & within) | both_nonfinite
        return [i for i in range(len(payload)) if not bool(clean[i].all())]

    def broadcast(
        self, key: str, rank: int, arrays: Optional[Sequence[Any]] = None, root: int = 0
    ) -> List[Any]:
        return self.inner.broadcast(key, rank, arrays, root=root)

    def close(self) -> None:
        self.inner.close()

    def poison(self, exc: BaseException) -> None:
        self.inner.poison(exc)

    # -- accounting ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "checksum_encodes": self._checksum_encodes,
                "checksum_verifies": self._checksum_verifies,
                "mismatches": self._mismatches,
            }

    def fold_timers(self, registry: Optional[TimingRegistry] = None) -> None:
        """Move the accumulated ``comm/*`` durations into a registry.

        Called from a single coordinating thread (between steps).  ``None``
        folds into the registry given at construction.
        """
        registry = registry if registry is not None else self.timers
        if registry is None:
            return
        with self._lock:
            verify, self._verify_seconds = self._verify_seconds, 0.0
            allreduce, self._allreduce_seconds = self._allreduce_seconds, 0.0
        if verify:
            registry.add("comm/verify", verify)
        if allreduce:
            registry.add("comm/allreduce", allreduce)

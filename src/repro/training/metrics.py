"""Training metrics containers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["StepResult", "TrainingMetrics"]


@dataclass
class StepResult:
    """Outcome of one training step."""

    step: int
    loss: float
    step_seconds: float
    attention_seconds: float
    #: Checker time on this step's critical path; with async verification the
    #: worker's share is excluded (see ``ATTNChecker.critical_path_seconds``).
    abft_seconds: float = 0.0
    corrections: int = 0
    detections: int = 0
    restored_from_checkpoint: bool = False
    #: Dirty boundaries whose verification arrived only after the producing
    #: step's values were consumed (async verification).
    stale_detections: int = 0
    #: Step was re-executed by the trainer's bounded-staleness policy.
    reexecuted: bool = False

    @property
    def non_trainable(self) -> bool:
        """Whether this step left training in a non-trainable state (NaN loss)."""
        return math.isnan(self.loss)


@dataclass
class TrainingMetrics:
    """Accumulates per-step results and provides epoch-level summaries."""

    steps: List[StepResult] = field(default_factory=list)
    epoch_boundaries: List[int] = field(default_factory=list)

    def record(self, result: StepResult) -> None:
        self.steps.append(result)

    def end_epoch(self) -> None:
        self.epoch_boundaries.append(len(self.steps))

    # -- loss summaries -------------------------------------------------------------

    def losses(self) -> List[float]:
        return [s.loss for s in self.steps]

    def epoch_losses(self) -> List[float]:
        """Mean finite loss per epoch (the series plotted in Figure 6)."""
        result = []
        start = 0
        boundaries = self.epoch_boundaries or [len(self.steps)]
        for end in boundaries:
            chunk = [s.loss for s in self.steps[start:end] if not math.isnan(s.loss)]
            result.append(float(np.mean(chunk)) if chunk else float("nan"))
            start = end
        return result

    def num_non_trainable(self) -> int:
        return sum(1 for s in self.steps if s.non_trainable)

    # -- timing summaries --------------------------------------------------------------

    def total_step_seconds(self) -> float:
        return sum(s.step_seconds for s in self.steps)

    def total_attention_seconds(self) -> float:
        return sum(s.attention_seconds for s in self.steps)

    def total_abft_seconds(self) -> float:
        return sum(s.abft_seconds for s in self.steps)

    def mean_step_seconds(self) -> float:
        return self.total_step_seconds() / len(self.steps) if self.steps else 0.0

    def total_corrections(self) -> int:
        return sum(s.corrections for s in self.steps)

    def total_detections(self) -> int:
        return sum(s.detections for s in self.steps)

    def total_stale_detections(self) -> int:
        return sum(s.stale_detections for s in self.steps)

    def num_reexecuted(self) -> int:
        return sum(1 for s in self.steps if s.reexecuted)

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_steps": len(self.steps),
            "mean_loss": float(np.nanmean(self.losses())) if self.steps else float("nan"),
            "mean_step_seconds": self.mean_step_seconds(),
            "total_attention_seconds": self.total_attention_seconds(),
            "total_abft_seconds": self.total_abft_seconds(),
            "non_trainable_steps": self.num_non_trainable(),
            "corrections": self.total_corrections(),
            "stale_detections": self.total_stale_detections(),
            "reexecuted_steps": self.num_reexecuted(),
        }

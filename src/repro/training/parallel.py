"""Data-parallel sharded training with a checksum-protected all-reduce.

:class:`DataParallelTrainer` shards each global batch across ``shards``
virtual ranks, every rank owning its own device-resident model replica,
optimizer and (optionally) per-shard :class:`~repro.core.ATTNChecker` whose
async verification drains independently of its peers.  Gradient
synchronisation goes through the :mod:`repro.comm` collective seam; with
``protect_collective=True`` (default) the all-reduce itself is ABFT-covered:
each rank attaches float64 gradient checksums, and the linearity identity
``checksum(sum of gradients) == sum of checksums`` is verified on the reduced
result (:class:`repro.comm.ProtectedCollective`).

**Determinism / byte-equivalence.**  The shard count is decoupled from the
worker count: ``shards`` fixes the numerical decomposition (R replicas, R
per-shard gradients, one rank-ordered reduction) while ``workers`` only
decides how many OS threads drive those ranks.  Because the reduction is a
deterministic left fold in rank order and every per-rank computation sees
identical inputs regardless of which thread runs it, training with any
worker count produces **byte-identical weights** at a fixed shard count —
the property the N-worker vs 1-worker equivalence test pins.  Thread workers
overlap where the backend releases the GIL (BLAS GEMMs on the NumPy
substrate, device kernels elsewhere); a process-based executor
(``executor="process"``) is available for GIL-free scaling, at the cost of
pickling gradients across the pipe.

**Dirty reductions and the stale policy.**  A checksum mismatch at the
reduction extends the existing ``stale_policy`` machinery to rank level:

* ``"record"`` — count the dirty reduction and proceed with its result;
* ``"reexecute"`` — re-execute the reduction from the ranks' retained (and
  still intact) local gradients under a fresh key, up to
  ``max_retries_per_step`` times — a transient fault in the collective does
  not recur;
* ``"abort"`` — raise :class:`~repro.training.trainer.StaleDetectionAbort`.

Per-rank *attention* faults follow the same policy before the collective:
each rank settles its own checker at the end of backward (for ``reexecute``
/ ``abort`` an async engine is drained so verdicts are in hand *before* the
rank contributes), and a dirty rank re-executes only its own
forward/backward — no optimizer state has advanced yet, so rank-level
re-execution is checkpoint-free by construction.

**Overlapped, bucketed reduction.**  With ``overlap_grad_reduce=True`` the
phase A/B split dissolves: trainable parameters are partitioned into
size-capped buckets in reverse-registration order
(:class:`repro.comm.GradientBucketer`), each parameter carries a
post-accumulate gradient hook, and the moment a bucket's last gradient lands
during backward the rank ``contribute``\\ s that bucket's flat payload —
the collective (with ``eager_reduce``) folds it while backprop continues on
earlier layers.  Each bucket rides its own rendezvous key
(``step{N}/bucket{k}``; the loss scalar rides the final bucket), so a dirty
reduction is *bucket-granular*: ``stale_policy="reexecute"`` re-contributes
only the dirty bucket's retained clean payloads under
``step{N}/bucket{k}#retry{a}``.  Because the per-bucket fold is the same
rank-ordered elementwise left fold over a pure concatenation, the overlapped
path is **byte-identical** to the non-overlapped and serial paths for any
bucket cap and worker count.  When a rank-level re-execution is possible
(a checker under ``stale_policy="reexecute"``), in-backward launches are
deferred to just after the checker settles — still bucket-granular, the
launch order still readiness order — so a re-executed shard never
double-contributes.

Timer keys: ``parallel/step`` (coordinator wall clock), ``comm/allreduce``
(rendezvous + reduction) and ``comm/verify`` (checksum encode / recompute /
compare), the latter two folded from the per-rank workers into the shared
registry between steps.  Overlapped runs add ``comm/bucket``
(flatten/unflatten bookkeeping), ``comm/overlap`` (backward wall time with a
bucket reduction already in flight) and ``comm/drain`` (post-backward wait
for the remaining reductions); ``overlap_efficiency`` on the step result is
``overlap / (overlap + drain)``.
"""

from __future__ import annotations

import copy
import math
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import namespace_of
from repro.comm import (
    BucketAccounting,
    Collective,
    CollectiveError,
    DirtyReductionError,
    GradientBucketer,
    ProtectedCollective,
    ThreadCollective,
)
from repro.core.attention_checker import ATTNChecker, ATTNCheckerConfig
from repro.faults.injector import FaultInjector
from repro.nn.attention import AttentionHooks, ComposedHooks
from repro.nn.module import Module
from repro.training.optimizer import AdamW
from repro.training.trainer import (
    STALE_POLICIES,
    StaleDetectionAbort,
    _count_stale_dirty,
    clip_gradients,
)
from repro.utils.logging import get_logger
from repro.utils.timing import TimingRegistry

__all__ = [
    "EXECUTORS",
    "ReplicaSpec",
    "DataParallelConfig",
    "ParallelStepResult",
    "DataParallelTrainer",
]

logger = get_logger("training.parallel")

#: Supported executors: ``serial`` drives every rank on the calling thread
#: (the 1-worker reference), ``thread`` uses a pool of ``workers`` OS threads
#: over the GIL-releasing backend seam, ``process`` forks out to spawned
#: worker processes (NumPy substrate only; gradients cross the pipe).
EXECUTORS = ("serial", "thread", "process")


@dataclass
class ReplicaSpec:
    """Picklable recipe for building one model replica.

    Every rank builds from the *same* spec (same seed), so replicas start
    byte-identical on any executor — including spawned worker processes,
    which cannot receive live model objects.
    """

    name: str = "bert-base"
    size: str = "tiny"
    seed: int = 0
    num_labels: Optional[int] = None
    array_backend: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Module:
        from repro.models import build_model

        return build_model(
            self.name,
            size=self.size,
            rng=np.random.default_rng(self.seed),
            num_labels=self.num_labels,
            array_backend=self.array_backend,
            **self.overrides,
        )


@dataclass
class DataParallelConfig:
    """Knobs of the data-parallel trainer.

    Attributes
    ----------
    workers:
        OS threads (or worker processes) driving the ranks.
    shards:
        Virtual ranks R — the numerical decomposition of the global batch.
        Defaults to ``workers``.  ``workers`` may be smaller than ``shards``
        (each thread then owns a stride of ranks); it must not be larger.
    executor:
        One of :data:`EXECUTORS`.
    learning_rate / weight_decay / max_grad_norm:
        Per-replica AdamW and clipping settings (clipping runs on the
        *reduced* gradient, identically on every rank).
    stale_policy / max_retries_per_step:
        Recovery policy for dirty reductions and per-rank stale attention
        verdicts (see the module docstring).
    protect_collective:
        Wrap the collective in a :class:`~repro.comm.ProtectedCollective`.
    sync_weights_on_init:
        Broadcast rank 0's weights to every replica at construction (a
        guard against divergent replica initialisation; also what exercises
        the ``broadcast`` collective).
    protection:
        Optional :class:`~repro.core.ATTNCheckerConfig`; each rank gets its
        own independent checker (and, in async mode, its own verification
        worker) built from a deep copy of this config.
    overlap_grad_reduce / bucket_cap_mb:
        Bucketed, backward-overlapped reduction (see the module docstring).
        Off by default — the phase-split path stays bit-for-bit what it was;
        on, the result is still byte-identical, just overlapped.
        ``bucket_cap_mb`` is the soft per-bucket size cap in MiB.
    """

    workers: int = 2
    shards: Optional[int] = None
    executor: str = "thread"
    learning_rate: float = 5e-4
    weight_decay: float = 0.01
    max_grad_norm: float = 1.0
    stale_policy: str = "record"
    max_retries_per_step: int = 2
    protect_collective: bool = True
    sync_weights_on_init: bool = True
    protection: Optional[ATTNCheckerConfig] = None
    overlap_grad_reduce: bool = False
    bucket_cap_mb: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not self.bucket_cap_mb > 0:
            raise ValueError(f"bucket_cap_mb must be > 0, got {self.bucket_cap_mb}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        if self.stale_policy not in STALE_POLICIES:
            raise ValueError(
                f"unknown stale_policy {self.stale_policy!r}; "
                f"expected one of {STALE_POLICIES}"
            )
        if self.shards is None:
            self.shards = self.workers
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers > self.shards:
            raise ValueError(
                f"workers ({self.workers}) must not exceed shards ({self.shards}); "
                "extra workers would idle and break the fixed numerical decomposition"
            )

    @property
    def world_size(self) -> int:
        return int(self.shards)  # type: ignore[arg-type]


@dataclass
class ParallelStepResult:
    """Metrics of one data-parallel optimisation step."""

    step: int
    loss: float
    shard_losses: List[float]
    step_seconds: float
    #: Per-rank stale dirty attention verdicts (summed over ranks).
    stale_detections: int = 0
    #: Ranks that re-executed their forward/backward this step.
    rank_reexecutions: int = 0
    #: Gradient tensors whose reduction verified dirty this step.
    dirty_reductions: int = 0
    #: Re-executed reductions (``stale_policy="reexecute"``) this step.
    reduction_reexecutions: int = 0
    #: Attention detections / corrections summed over the rank checkers.
    detections: int = 0
    corrections: int = 0
    #: Gradient buckets of the overlapped reduction (0 = phase-split path).
    buckets: int = 0
    #: Summed per-rank backward wall time with a bucket reduction in flight.
    overlap_seconds: float = 0.0
    #: Summed per-rank post-backward wait for the remaining reductions.
    drain_seconds: float = 0.0
    #: ``overlap / (overlap + drain)`` — 1.0 means the reduction fully hid
    #: behind backward, 0.0 means it all serialised after it.
    overlap_efficiency: float = 0.0

    @property
    def non_trainable(self) -> bool:
        return math.isnan(self.loss)


class _RankRunner:
    """One rank's replica, optimizer, checker and step logic.

    Shared by the thread/serial executors (R runners owned by the trainer)
    and the process executor (each worker process owns its ranks' runners).
    Phase A (:meth:`forward_backward` + :meth:`gradients`) produces the
    rank's contribution; phase B (:meth:`apply`) consumes the reduction.
    The optimizer only advances in phase B, so a phase-A re-execution after
    a stale dirty verdict restarts from genuinely clean state.
    """

    def __init__(
        self,
        rank: int,
        model: Module,
        config: DataParallelConfig,
        checker: Optional[ATTNChecker] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.rank = rank
        self.model = model
        self.config = config
        self.checker = checker
        self.injector = injector
        self.params = model.parameters()
        self.optimizer = AdamW(
            self.params,
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        # Overlap machinery (installed by enable_overlap; inert otherwise).
        self._tracker: Optional[Any] = None
        self._overlap_launch: Optional[Any] = None
        self._overlap_immediate = False
        self._ready_order: List[int] = []
        self._hook_handles: List[Any] = []
        #: Shard loss of the in-flight forward/backward attempt, readable by
        #: mid-backward bucket launches (the loss scalar rides the final
        #: bucket's payload instead of its own rendezvous).
        self.current_loss: float = math.nan
        hooks: List[AttentionHooks] = []
        if injector is not None:
            hooks.append(injector)
        if checker is not None:
            hooks.append(checker)
        if hooks:
            model.set_attention_hooks(ComposedHooks(hooks))
        model.train()

    # -- overlapped reduction support ------------------------------------------------

    def enable_overlap(
        self, bucketer: GradientBucketer, launch: Any, immediate: bool
    ) -> None:
        """Install post-accumulate hooks that mark bucket readiness.

        ``launch(rank, bucket, during_backward)`` is the trainer's contribute
        callback.  ``immediate`` launches straight from the hook (mid
        backward); when a rank-level re-execution is possible (checker +
        ``stale_policy="reexecute"``) the trainer passes ``immediate=False``
        and completed buckets queue in readiness order, launched right after
        the checker settles — a re-executed attempt resets the queue, so a
        shard never double-contributes.
        """
        self._tracker = bucketer.tracker()
        self._overlap_launch = launch
        self._overlap_immediate = immediate
        for index, param in enumerate(self.params):
            handle = param.register_post_accumulate_grad_hook(
                lambda _t, i=index: self._on_grad_ready(i)
            )
            self._hook_handles.append(handle)

    def _on_grad_ready(self, param_index: int) -> None:
        if self._tracker is None:
            return
        bucket = self._tracker.mark(param_index)
        if bucket is None:
            return
        if self._overlap_immediate:
            self._overlap_launch(self.rank, bucket, True)
        else:
            self._ready_order.append(bucket)

    def take_ready_buckets(self) -> List[int]:
        """Bucket launch order after backward: deferred completions in
        readiness order, then never-completed buckets (zero-filled slices)
        ascending."""
        assert self._tracker is not None
        order = list(self._ready_order)
        self._ready_order = []
        order.extend(self._tracker.pending())
        return order

    # -- phase A ---------------------------------------------------------------------

    def forward_backward(self, shard: Dict[str, np.ndarray]) -> Tuple[float, int, int]:
        """Compute this rank's shard gradient; settle its own checker.

        Returns ``(loss, stale_dirty, reexecutions)``.  For ``reexecute`` /
        ``abort`` policies an async checker is drained so the verdict for
        *this* step's sections is in hand before the rank contributes to the
        collective — per-shard engines still drain independently of their
        peers, there is no cross-rank barrier here.
        """
        policy = self.config.stale_policy
        reexecutions = 0
        total_stale = 0
        while True:
            self.model.zero_grad()
            if self._tracker is not None:
                # Fresh attempt, fresh readiness: a re-executed shard starts
                # its bucket accounting over (deferred mode only — immediate
                # launches and re-execution are mutually exclusive).
                self._tracker.reset()
                self._ready_order = []
            output = self.model(
                shard["input_ids"],
                attention_mask=shard.get("attention_mask"),
                labels=shard["labels"],
            )
            loss_value = output.loss_value
            self.current_loss = loss_value
            if math.isfinite(loss_value):
                output.loss.backward()
            stale_dirty = 0
            if self.checker is not None:
                outcomes = list(self.checker.end_step())
                if policy != "record" and self.checker.config.async_verification:
                    outcomes.extend(self.checker.drain())
                stale_dirty = _count_stale_dirty(outcomes)
            total_stale += stale_dirty
            if stale_dirty and policy == "abort":
                raise StaleDetectionAbort(
                    f"rank {self.rank}: {stale_dirty} boundary check(s) verified "
                    f"dirty after their values were consumed (stale_policy='abort')"
                )
            if (
                stale_dirty
                and policy == "reexecute"
                and reexecutions < self.config.max_retries_per_step
            ):
                # No optimizer update has happened yet this step, so simply
                # re-running the shard is clean recovery; a transient fault
                # does not recur.
                reexecutions += 1
                continue
            return loss_value, total_stale, reexecutions

    def gradients(self) -> List[Any]:
        """This rank's gradient list, in parameter order (zeros if skipped)."""
        grads: List[Any] = []
        for p in self.params:
            if p.grad is not None:
                grads.append(p.grad)
            else:
                grads.append(p.xp.zeros_like(p.data))
        return grads

    # -- phase B ---------------------------------------------------------------------

    def apply(self, reduced: Sequence[Any], mean_loss: float) -> None:
        """Adopt the reduced gradient and advance the optimizer.

        Skipped entirely for a non-finite global mean loss, mirroring the
        single-device trainer's skip-on-non-finite rule — and because the
        mean is global, every rank makes the same decision.
        """
        if not math.isfinite(mean_loss):
            return
        for p, g in zip(self.model.parameters(), reduced):
            p.grad = g
        clip_gradients(self.model, self.config.max_grad_norm)
        self.optimizer.step()

    def close(self) -> None:
        if self.checker is not None:
            self.checker.close()
        for handle in self._hook_handles:
            handle.remove()
        self._hook_handles = []
        self.model.set_attention_hooks(None)


def _shard_batch(batch: Dict[str, np.ndarray], shards: int) -> List[Dict[str, np.ndarray]]:
    """Split a global batch into ``shards`` equal leading-axis slices."""
    size = len(batch["labels"])
    if size < shards:
        # Covers the empty batch too: an empty shard would contribute a NaN
        # loss and zero gradients, silently poisoning the global mean.
        raise ValueError(
            f"global batch size {size} is smaller than shards={shards}; "
            "every shard needs at least one row"
        )
    if size % shards != 0:
        raise ValueError(
            f"global batch size {size} is not divisible by shards={shards}; "
            "equal shards are required for the mean-of-means gradient to equal "
            "the global-batch gradient"
        )
    per = size // shards
    return [
        {k: v[r * per : (r + 1) * per] for k, v in batch.items()}
        for r in range(shards)
    ]


def _loss_array(xp: Any, loss_value: float) -> Any:
    out = xp.zeros((1,), dtype=xp.float64)
    out[0] = loss_value
    return out


# -- process executor ---------------------------------------------------------------


def _process_worker(conn, spec: ReplicaSpec, config: DataParallelConfig,
                    owned: List[int]) -> None:
    """Worker-process main loop: runs phase A / phase B for its owned ranks."""
    runners: Dict[int, _RankRunner] = {}
    for rank in owned:
        checker = (
            ATTNChecker(copy.deepcopy(config.protection))
            if config.protection is not None
            else None
        )
        runners[rank] = _RankRunner(rank, spec.build(), config, checker=checker)
    try:
        while True:
            cmd, payload = conn.recv()
            try:
                if cmd == "fwbw":
                    shards = payload
                    out = {}
                    for rank in owned:
                        loss, stale, reexec = runners[rank].forward_backward(shards[rank])
                        out[rank] = (loss, stale, reexec, runners[rank].gradients())
                    conn.send(("ok", out))
                elif cmd == "apply":
                    for rank, (reduced, mean_loss) in payload.items():
                        runners[rank].apply(reduced, mean_loss)
                    conn.send(("ok", None))
                elif cmd == "state":
                    conn.send(("ok", runners[payload].model.state_dict()))
                elif cmd == "load_state":
                    for runner in runners.values():
                        runner.model.load_state_dict(payload)
                    conn.send(("ok", None))
                elif cmd == "close":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol guard
                    conn.send(("error", ("RuntimeError", f"unknown command {cmd!r}")))
            except BaseException as exc:
                conn.send(("error", (type(exc).__name__, str(exc))))
    finally:
        for runner in runners.values():
            runner.close()


class _ProcessPool:
    """Spawned worker processes, one per worker, each owning a rank stride."""

    def __init__(self, spec: ReplicaSpec, config: DataParallelConfig,
                 owned_by_worker: List[List[int]]) -> None:
        ctx = multiprocessing.get_context("spawn")
        self.owned_by_worker = owned_by_worker
        self.conns = []
        self.procs = []
        for owned in owned_by_worker:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker,
                args=(child_conn, spec, config, owned),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    def request(self, worker: int, cmd: str, payload: Any) -> Any:
        self.conns[worker].send((cmd, payload))
        status, value = self.conns[worker].recv()
        if status == "error":
            name, message = value
            if name == "StaleDetectionAbort":
                raise StaleDetectionAbort(message)
            raise RuntimeError(f"worker {worker} failed: {name}: {message}")
        return value

    def broadcast_request(self, cmd: str, payloads: List[Any]) -> List[Any]:
        """Send to every worker first, then collect — keeps them concurrent."""
        for worker, payload in enumerate(payloads):
            self.conns[worker].send((cmd, payload))
        results = []
        for worker in range(len(self.conns)):
            status, value = self.conns[worker].recv()
            if status == "error":
                name, message = value
                if name == "StaleDetectionAbort":
                    raise StaleDetectionAbort(message)
                raise RuntimeError(f"worker {worker} failed: {name}: {message}")
            results.append(value)
        return results

    def close(self) -> None:
        for conn, proc in zip(self.conns, self.procs):
            try:
                conn.send(("close", None))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker safety net
                proc.terminate()


# -- the trainer --------------------------------------------------------------------


class DataParallelTrainer:
    """Data-parallel trainer over R virtual ranks and W workers (W <= R).

    Parameters
    ----------
    model_spec:
        Recipe every rank builds its replica from (required for the process
        executor; the default way to construct replicas elsewhere too).
    models:
        Alternative to ``model_spec`` for thread/serial executors: a list of
        ``shards`` pre-built replicas (must be identically initialised, or
        ``sync_weights_on_init`` left on).
    collective:
        Override the gradient collective; defaults to a
        :class:`~repro.comm.ThreadCollective` (op ``mean``), wrapped in a
        :class:`~repro.comm.ProtectedCollective` per
        ``config.protect_collective``.
    injector:
        Optional *seed-constructed* attention :class:`FaultInjector`; each
        rank gets its own deterministic child via ``injector.spawn(rank)``.
        Not supported by the process executor.
    collective_injector:
        Optional hook ``(key, rank, arrays)`` corrupting deposited
        contributions (e.g. :class:`repro.faults.CollectiveFaultInjector`);
        installed as the inner collective's ``fault_hook``.
    """

    def __init__(
        self,
        model_spec: Optional[ReplicaSpec] = None,
        models: Optional[Sequence[Module]] = None,
        config: Optional[DataParallelConfig] = None,
        collective: Optional[Collective] = None,
        injector: Optional[FaultInjector] = None,
        collective_injector: Optional[Any] = None,
    ) -> None:
        self.config = config or DataParallelConfig()
        self.timers = TimingRegistry()
        self.metrics: List[ParallelStepResult] = []
        self.global_step = 0
        self.collective_injector = collective_injector
        world = self.config.world_size
        if (model_spec is None) == (models is None):
            raise ValueError("pass exactly one of model_spec or models")
        if self.config.executor == "process":
            if model_spec is None:
                raise ValueError("the process executor needs a picklable model_spec")
            if injector is not None:
                raise ValueError(
                    "attention fault injection is not supported by the process "
                    "executor (hooks live in the worker processes); use the "
                    "collective_injector seam or the thread executor"
                )
            if model_spec.array_backend not in (None, "numpy"):
                raise ValueError(
                    "the process executor supports the NumPy substrate only "
                    f"(got array_backend={model_spec.array_backend!r})"
                )

        if collective is None:
            inner = ThreadCollective(
                world,
                op="mean",
                fault_hook=collective_injector,
                # Overlapped runs fold eagerly inside the last contribute so
                # the reduction really does run during backward.
                eager_reduce=self.config.overlap_grad_reduce,
                # Overlapped payloads are flat scratch buffers the trainer
                # owns, so the fold may accumulate into rank 0's deposit
                # in place — except under "reexecute", where the retained
                # payloads must survive the fold intact for bucket retry.
                consume_deposits=(
                    self.config.overlap_grad_reduce
                    and self.config.stale_policy != "reexecute"
                ),
            )
            collective = (
                ProtectedCollective(inner, timers=self.timers)
                if self.config.protect_collective
                else inner
            )
        elif collective.world_size != world:
            raise ValueError(
                f"collective world size {collective.world_size} != shards {world}"
            )
        self.collective = collective

        #: rank stride owned by each worker: worker w drives ranks w, w+W, ...
        workers = self.config.workers
        self._owned_by_worker = [list(range(w, world, workers)) for w in range(workers)]

        self._pool: Optional[ThreadPoolExecutor] = None
        self._procs: Optional[_ProcessPool] = None
        self.runners: List[_RankRunner] = []
        if self.config.executor == "process":
            self._procs = _ProcessPool(model_spec, self.config, self._owned_by_worker)
            if self.config.sync_weights_on_init and world > 1:
                state = self._procs.request(0, "state", self._owned_by_worker[0][0])
                self._procs.broadcast_request("load_state", [state] * workers)
        else:
            replicas = (
                list(models)
                if models is not None
                else [model_spec.build() for _ in range(world)]  # type: ignore[union-attr]
            )
            if len(replicas) != world:
                raise ValueError(
                    f"need exactly {world} replicas (one per shard), got {len(replicas)}"
                )
            for rank, model in enumerate(replicas):
                checker = (
                    ATTNChecker(copy.deepcopy(self.config.protection))
                    if self.config.protection is not None
                    else None
                )
                rank_injector = injector.spawn(rank) if injector is not None else None
                self.runners.append(
                    _RankRunner(rank, model, self.config, checker=checker,
                                injector=rank_injector)
                )
            if self.config.executor == "thread" and workers > 1:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="dp-rank"
                )
            if self.config.sync_weights_on_init and world > 1:
                self._broadcast_initial_weights()

        # Per-step scratch (index-assigned, one writer per slot).
        self._payloads: List[Optional[List[Any]]] = [None] * world
        self._shard_losses: List[float] = [math.nan] * world
        self._mean_losses: List[float] = [math.nan] * world
        self._stale_counts: List[int] = [0] * world
        self._reexec_counts: List[int] = [0] * world
        self._dirty_counts: List[int] = [0] * world
        self._retry_counts: List[int] = [0] * world

        # Overlapped-reduction machinery.
        self._bucketer: Optional[GradientBucketer] = None
        self._bucket_stats: Optional[BucketAccounting] = None
        self._bucket_payloads: List[Optional[Dict[int, List[Any]]]] = [None] * world
        self._first_launch: List[Optional[float]] = [None] * world
        if self.config.overlap_grad_reduce:
            self._bucket_stats = BucketAccounting()
            if self.runners:
                self._bucketer = GradientBucketer(
                    [p.data for p in self.runners[0].params],
                    self.config.bucket_cap_mb,
                )
                # A checker under "reexecute" may re-run a shard after its
                # backward; in-backward launches would then double-contribute,
                # so they defer to just after the checker settles.
                immediate = not (
                    self.config.protection is not None
                    and self.config.stale_policy == "reexecute"
                )
                for runner in self.runners:
                    runner.enable_overlap(self._bucketer, self._launch_bucket, immediate)
            # Process executor: the coordinator buckets the shipped gradients
            # (no in-backward hooks across the pipe); the bucketer is built
            # lazily from the first step's gradient shapes.

    # -- construction helpers --------------------------------------------------------

    def _broadcast_initial_weights(self) -> None:
        state = self.runners[0].model.state_dict()
        names = sorted(state)
        arrays = [state[name] for name in names]
        for rank in range(self.config.world_size):
            received = self.collective.broadcast(
                "init/weights", rank, arrays if rank == 0 else None, root=0
            )
            if rank != 0:
                self.runners[rank].model.load_state_dict(dict(zip(names, received)))

    # -- one step ---------------------------------------------------------------------

    def _reduce_with_policy(self, step: int, owned: List[int]) -> None:
        """Phase B part 1: finish the reduction for ``owned`` ranks, applying
        the dirty-reduction policy symmetrically across all workers."""
        policy = self.config.stale_policy
        key = f"step{step}/grads"
        attempt = 0
        reduced: Dict[int, List[Any]] = {}
        while True:
            dirty_indices: List[int] = []
            for rank in owned:
                try:
                    reduced[rank] = self.collective.finish(key, rank)
                except DirtyReductionError as exc:
                    reduced[rank] = exc.reduced
                    dirty_indices = exc.dirty_indices
            if not dirty_indices:
                break
            # Every worker observed the same shared verdict, so they all
            # take the same branch — no coordination needed.
            if policy == "abort":
                raise StaleDetectionAbort(
                    f"step {step}: checksum-linearity mismatch on reduced gradient "
                    f"tensor(s) {dirty_indices} (stale_policy='abort')"
                )
            if policy == "record" or attempt >= self.config.max_retries_per_step:
                for rank in owned:
                    self._dirty_counts[rank] = len(dirty_indices)
                break
            # reexecute: re-reduce from the retained, still-intact local
            # contributions under a fresh key (transient faults don't recur;
            # the injector leaves '#retry' keys alone by contract).
            attempt += 1
            key = f"step{step}/grads#retry{attempt}"
            for rank in owned:
                self.collective.contribute(key, rank, self._payloads[rank])
        for rank in owned:
            self._retry_counts[rank] = attempt
            mean_loss = float(np.asarray(reduced[rank][-1]).reshape(-1)[0])
            self._mean_losses[rank] = mean_loss
            self.runners[rank].apply(reduced[rank][:-1], mean_loss)

    def _worker_step(self, step: int, worker: int,
                     shards: List[Dict[str, np.ndarray]]) -> None:
        owned = self._owned_by_worker[worker]
        try:
            key = f"step{step}/grads"
            for rank in owned:
                runner = self.runners[rank]
                loss, stale, reexec = runner.forward_backward(shards[rank])
                grads = runner.gradients()
                payload = grads + [_loss_array(namespace_of(grads[0]), loss)]
                self._shard_losses[rank] = loss
                self._stale_counts[rank] = stale
                self._reexec_counts[rank] = reexec
                self._payloads[rank] = payload
                self.collective.contribute(key, rank, payload)
            self._reduce_with_policy(step, owned)
        except BaseException as exc:
            # Unblock peers waiting in the rendezvous; the coordinator
            # re-raises the original failure, not the poisoned peers'.
            self.collective.poison(exc)
            raise

    # -- one step, overlapped ----------------------------------------------------------

    def _bucket_key(self, step: int, bucket: int) -> str:
        return f"step{step}/bucket{bucket}"

    def _launch_bucket(self, rank: int, bucket: int, during_backward: bool) -> None:
        """Flatten and contribute one bucket of ``rank``'s gradients.

        Called from a post-accumulate hook mid-backward (immediate mode) or
        right after the rank's checker settles (deferred / zero-fill
        launches).  The flat payload is retained for bucket-granular retry.
        """
        runner = self.runners[rank]
        begin = time.perf_counter()
        flat = self._bucketer.flatten(
            bucket,
            [p.grad for p in runner.params],
            namespace_of(runner.params[0].data),
        )
        self._bucket_stats.add_bucket_seconds(time.perf_counter() - begin)
        payload = [flat]
        if bucket == self._bucketer.num_buckets - 1:
            # The loss scalar rides the final bucket's payload rather than a
            # rendezvous of its own — one fewer key per step, and the counts
            # still match the cost model's (num_buckets + 1) encode slots.
            payload.append(
                _loss_array(namespace_of(runner.params[0].data), runner.current_loss)
            )
        self._bucket_payloads[rank][bucket] = payload
        self._bucket_stats.record_launch(rank, bucket, during_backward)
        if during_backward and self._first_launch[rank] is None:
            self._first_launch[rank] = time.perf_counter()
        self.collective.contribute(self._bucket_key(self.global_step, bucket), rank, payload)

    def _worker_step_overlap(self, step: int, worker: int,
                             shards: List[Dict[str, np.ndarray]]) -> None:
        owned = self._owned_by_worker[worker]
        try:
            for rank in owned:
                runner = self.runners[rank]
                self._bucket_payloads[rank] = {}
                self._first_launch[rank] = None
                loss, stale, reexec = runner.forward_backward(shards[rank])
                backward_end = time.perf_counter()
                first = self._first_launch[rank]
                if first is not None:
                    self._bucket_stats.add_overlap_seconds(
                        max(0.0, backward_end - first)
                    )
                # Deferred completions in readiness order, then zero-filled
                # buckets the loss never reached (ascending).
                for bucket in runner.take_ready_buckets():
                    self._launch_bucket(rank, bucket, False)
                self._shard_losses[rank] = loss
                self._stale_counts[rank] = stale
                self._reexec_counts[rank] = reexec
            drain_begin = time.perf_counter()
            applied = self._reduce_buckets_with_policy(step, owned)
            self._bucket_stats.add_drain_seconds(time.perf_counter() - drain_begin)
            for rank in owned:
                grads, mean_loss = applied[rank]
                self._mean_losses[rank] = mean_loss
                self.runners[rank].apply(grads, mean_loss)
        except BaseException as exc:
            self.collective.poison(exc)
            raise

    def _reduce_buckets_with_policy(
        self, step: int, owned: List[int]
    ) -> Dict[int, Tuple[List[Any], float]]:
        """Finish every bucket's reduction for ``owned`` ranks, applying the
        dirty policy *per bucket* — a mismatch re-reduces only the bucket it
        struck, from the ranks' retained flat payloads.

        Returns ``{rank: (parameter-order gradient list, mean loss)}``.
        Every worker runs this loop symmetrically over the same shared
        verdicts, so retries rendezvous without coordination.
        """
        policy = self.config.stale_policy
        num_buckets = self._bucketer.num_buckets
        flat: Dict[int, Dict[int, Any]] = {rank: {} for rank in owned}
        loss_val: Dict[int, float] = {}
        total_retries = 0
        for bucket in range(num_buckets):
            base_key = self._bucket_key(step, bucket)
            key = base_key
            attempt = 0
            while True:
                dirty = False
                for rank in owned:
                    try:
                        result = self.collective.finish(key, rank)
                    except DirtyReductionError as exc:
                        result = exc.reduced
                        dirty = True
                    flat[rank][bucket] = result[0]
                    if bucket == num_buckets - 1:
                        # The reduced loss scalar rides the final bucket.
                        loss_val[rank] = float(
                            np.asarray(result[1]).reshape(-1)[0]
                        )
                if not dirty:
                    break
                if policy == "abort":
                    raise StaleDetectionAbort(
                        f"step {step}: checksum-linearity mismatch on reduced "
                        f"{base_key!r} (stale_policy='abort')"
                    )
                if policy == "record" or attempt >= self.config.max_retries_per_step:
                    for rank in owned:
                        self._dirty_counts[rank] += 1
                    break
                # Bucket-granular re-reduction: only this bucket's retained
                # clean payloads go around again; every other bucket's
                # completed reduction stands.
                attempt += 1
                key = f"{base_key}#retry{attempt}"
                if 0 in owned:
                    # Exactly one worker owns rank 0, so the global retry is
                    # counted once however many workers observe it.
                    self._bucket_stats.record_retry(bucket)
                for rank in owned:
                    self.collective.contribute(
                        key, rank, self._bucket_payloads[rank][bucket]
                    )
            total_retries += attempt
        out: Dict[int, Tuple[List[Any], float]] = {}
        for rank in owned:
            self._retry_counts[rank] += total_retries
            out[rank] = (self._materialize_bucket_grads(flat[rank]), loss_val[rank])
        return out

    def _materialize_bucket_grads(self, flat_by_bucket: Dict[int, Any]) -> List[Any]:
        """Parameter-order gradient views into the reduced flat buckets."""
        begin = time.perf_counter()
        full: List[Any] = [None] * self._bucketer.num_params
        for bucket in range(self._bucketer.num_buckets):
            for pi, view in self._bucketer.unflatten(
                bucket, flat_by_bucket[bucket]
            ).items():
                full[pi] = view
        self._bucket_stats.add_bucket_seconds(time.perf_counter() - begin)
        return full

    def train_step(self, batch: Dict[str, np.ndarray]) -> ParallelStepResult:
        """Run one data-parallel optimisation step on the global ``batch``."""
        self.global_step += 1
        step = self.global_step
        world = self.config.world_size
        shards = _shard_batch(batch, world)
        if self.collective_injector is not None and hasattr(
            self.collective_injector, "begin_step"
        ):
            self.collective_injector.begin_step(step)
        for slot in range(world):
            self._payloads[slot] = None
            self._shard_losses[slot] = math.nan
            self._mean_losses[slot] = math.nan
            self._stale_counts[slot] = 0
            self._reexec_counts[slot] = 0
            self._dirty_counts[slot] = 0
            self._retry_counts[slot] = 0

        start = time.perf_counter()
        detections_before, corrections_before = self._checker_totals()
        worker_step = (
            self._worker_step_overlap
            if self.config.overlap_grad_reduce
            else self._worker_step
        )
        if self._procs is not None:
            self._process_step(step, shards)
        elif self._pool is not None:
            futures = [
                self._pool.submit(worker_step, step, worker, shards)
                for worker in range(self.config.workers)
            ]
            errors: List[BaseException] = []
            for future in futures:
                try:
                    future.result()
                except BaseException as exc:  # noqa: BLE001 - gathered below
                    errors.append(exc)
            if errors:
                primary = next(
                    (e for e in errors if not isinstance(e, CollectiveError)), errors[0]
                )
                raise primary
        else:
            worker_step(step, 0, shards)

        if isinstance(self.collective, ProtectedCollective):
            self.collective.fold_timers(self.timers)
        elapsed = time.perf_counter() - start
        self.timers.add("parallel/step", elapsed)
        buckets = 0
        overlap_eff = overlap_s = drain_s = 0.0
        if self._bucket_stats is not None:
            seconds = self._bucket_stats.pop_step_seconds()
            self.timers.add("comm/bucket", seconds["bucket"])
            self.timers.add("comm/overlap", seconds["overlap"])
            self.timers.add("comm/drain", seconds["drain"])
            overlap_s, drain_s = seconds["overlap"], seconds["drain"]
            total = overlap_s + drain_s
            overlap_eff = overlap_s / total if total > 0 else 0.0
            buckets = self._bucketer.num_buckets if self._bucketer is not None else 0
        detections_after, corrections_after = self._checker_totals()
        result = ParallelStepResult(
            step=step,
            loss=self._mean_losses[0],
            shard_losses=list(self._shard_losses),
            step_seconds=elapsed,
            stale_detections=sum(self._stale_counts),
            rank_reexecutions=sum(self._reexec_counts),
            dirty_reductions=self._dirty_counts[0],
            reduction_reexecutions=self._retry_counts[0],
            detections=detections_after - detections_before,
            corrections=corrections_after - corrections_before,
            buckets=buckets,
            overlap_seconds=overlap_s,
            drain_seconds=drain_s,
            overlap_efficiency=overlap_eff,
        )
        self.metrics.append(result)
        return result

    def _process_step(self, step: int, shards: List[Dict[str, np.ndarray]]) -> None:
        """Drive one step through the worker processes.

        Phase A runs concurrently in the children; the coordinator then
        feeds each rank's gradients through the *same* collective (and the
        same dirty-reduction policy) before shipping the reduction back.
        """
        assert self._procs is not None
        payloads = [
            {rank: shards[rank] for rank in owned} for owned in self._owned_by_worker
        ]
        replies = self._procs.broadcast_request("fwbw", payloads)
        if self.config.overlap_grad_reduce:
            self._process_reduce_bucketed(step, replies)
        else:
            key = f"step{step}/grads"
            for worker, reply in enumerate(replies):
                for rank, (loss, stale, reexec, grads) in reply.items():
                    payload = grads + [_loss_array(namespace_of(grads[0]), loss)]
                    self._shard_losses[rank] = loss
                    self._stale_counts[rank] = stale
                    self._reexec_counts[rank] = reexec
                    self._payloads[rank] = payload
                    self.collective.contribute(key, rank, payload)
            self._reduce_with_process_policy(step)
        apply_payloads = []
        for owned in self._owned_by_worker:
            apply_payloads.append(
                {
                    rank: (self._reduced_cache[rank], self._mean_losses[rank])
                    for rank in owned
                }
            )
        self._procs.broadcast_request("apply", apply_payloads)

    def _process_reduce_bucketed(self, step: int, replies: List[Dict[int, Any]]) -> None:
        """Coordinator-side bucketed reduction for the process executor.

        The gradients already crossed the pipe, so there is no in-backward
        overlap to win here — the point is the *identical numerical path*:
        the same buckets, the same flat folds, the same bucket-granular
        retry, so process-executor training stays byte-identical to the
        overlapped thread path.
        """
        if self._bucketer is None:
            first = next(iter(replies[0].values()))
            self._bucketer = GradientBucketer(first[3], self.config.bucket_cap_mb)
        for reply in replies:
            for rank, (loss, stale, reexec, grads) in reply.items():
                self._shard_losses[rank] = loss
                self._stale_counts[rank] = stale
                self._reexec_counts[rank] = reexec
                self._bucket_payloads[rank] = {}
                self._first_launch[rank] = None
                for bucket in range(self._bucketer.num_buckets):
                    self._launch_process_bucket(rank, bucket, grads, loss)
        reduced = self._reduce_buckets_with_policy(
            step, list(range(self.config.world_size))
        )
        self._reduced_cache = {}
        for rank, (grads, mean_loss) in reduced.items():
            self._reduced_cache[rank] = grads
            self._mean_losses[rank] = mean_loss

    def _launch_process_bucket(
        self, rank: int, bucket: int, grads: List[Any], loss: float
    ) -> None:
        begin = time.perf_counter()
        flat = self._bucketer.flatten(bucket, grads, namespace_of(grads[0]))
        self._bucket_stats.add_bucket_seconds(time.perf_counter() - begin)
        payload = [flat]
        if bucket == self._bucketer.num_buckets - 1:
            payload.append(_loss_array(namespace_of(grads[0]), loss))
        self._bucket_payloads[rank][bucket] = payload
        self._bucket_stats.record_launch(rank, bucket, False)
        self.collective.contribute(self._bucket_key(self.global_step, bucket), rank, payload)

    def _reduce_with_process_policy(self, step: int) -> None:
        """The dirty-reduction policy, driven rank-by-rank by the coordinator."""
        policy = self.config.stale_policy
        world = self.config.world_size
        key = f"step{step}/grads"
        attempt = 0
        self._reduced_cache: Dict[int, List[Any]] = {}
        while True:
            dirty_indices: List[int] = []
            for rank in range(world):
                try:
                    result = self.collective.finish(key, rank)
                except DirtyReductionError as exc:
                    result = exc.reduced
                    dirty_indices = exc.dirty_indices
                self._reduced_cache[rank] = result
            if not dirty_indices:
                break
            if policy == "abort":
                raise StaleDetectionAbort(
                    f"step {step}: checksum-linearity mismatch on reduced gradient "
                    f"tensor(s) {dirty_indices} (stale_policy='abort')"
                )
            if policy == "record" or attempt >= self.config.max_retries_per_step:
                for rank in range(world):
                    self._dirty_counts[rank] = len(dirty_indices)
                break
            attempt += 1
            key = f"step{step}/grads#retry{attempt}"
            for rank in range(world):
                self.collective.contribute(key, rank, self._payloads[rank])
        for rank in range(world):
            self._retry_counts[rank] = attempt
            reduced = self._reduced_cache[rank]
            self._mean_losses[rank] = float(np.asarray(reduced[-1]).reshape(-1)[0])
            self._reduced_cache[rank] = reduced[:-1]

    def _checker_totals(self) -> Tuple[int, int]:
        detections = corrections = 0
        for runner in self.runners:
            if runner.checker is not None:
                detections += runner.checker.stats.total_detections
                corrections += runner.checker.stats.total_corrections
        return detections, corrections

    # -- epochs / evaluation -----------------------------------------------------------

    def train(
        self, batches: Iterable[Dict[str, np.ndarray]], epochs: int = 1
    ) -> List[ParallelStepResult]:
        batch_list = list(batches)
        if not batch_list:
            raise ValueError("no batches provided")
        for _ in range(epochs):
            for batch in batch_list:
                self.train_step(batch)
        return self.metrics

    def state_dict(self) -> Dict[str, Any]:
        """Rank 0's replica weights (identical on every rank by construction)."""
        if self._procs is not None:
            return self._procs.request(0, "state", self._owned_by_worker[0][0])
        return self.runners[0].model.state_dict()

    def collective_counters(self) -> Dict[str, int]:
        """The protected collective's cumulative dispatch counters."""
        if isinstance(self.collective, ProtectedCollective):
            return self.collective.counters()
        return {}

    def bucket_counters(self) -> Dict[str, Any]:
        """Cumulative bucket launch / retry counters of the overlapped path."""
        if self._bucket_stats is None:
            return {}
        return self._bucket_stats.counters()

    def close(self) -> None:
        for runner in self.runners:
            runner.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._procs is not None:
            self._procs.close()
        self.collective.close()

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

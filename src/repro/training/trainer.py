"""Training loop with fault-tolerance instrumentation.

:class:`Trainer` fine-tunes a sequence-classification model and exposes the
measurements the paper's evaluation is built on:

* per-step loss and the non-trainable-state signal (NaN loss),
* wall-clock time of the attention blocks and of the whole step,
* ABFT time (when an :class:`repro.core.ATTNChecker` is attached),
* optional per-step checkpointing with restore-on-NaN — the baseline recovery
  strategy of Figure 11.

Fault injectors and the ATTNChecker are both
:class:`repro.nn.AttentionHooks`; the trainer composes them (injector first,
checker second) and attaches them to every attention layer of the model.

With an *async-verification* checker (``async_verification=True``) the
trainer additionally implements the bounded-staleness recovery policy: each
``train_step`` submits the step's checksum snapshot and harvests completed
verification results, and when a harvested boundary verified dirty *after*
its values were consumed (a ``stale`` outcome), ``TrainerConfig.stale_policy``
decides whether to record it, re-execute the step (checkpoint-free recovery —
a transient fault does not recur on re-execution), or abort by raising
:class:`StaleDetectionAbort`.  :meth:`Trainer.drain_verifications` is the
end-of-run barrier that waits out in-flight verification work and folds
late-arriving counters into the last recorded step.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import backend_of, namespace_of
from repro.core.attention_checker import ATTNChecker
from repro.core.engine import SectionOutcome
from repro.nn.attention import AttentionHooks, ComposedHooks
from repro.nn.module import Module
from repro.training.checkpoint import CheckpointManager
from repro.training.metrics import StepResult, TrainingMetrics
from repro.training.optimizer import AdamW, Optimizer
from repro.training.scheduler import LRSchedule
from repro.utils.logging import get_logger

__all__ = [
    "STALE_POLICIES",
    "StaleDetectionAbort",
    "TrainerConfig",
    "Trainer",
    "AttentionTimingHooks",
    "clip_gradients",
]

logger = get_logger("training.trainer")

#: Recovery policies for stale dirty verifications (async checkers).
STALE_POLICIES = ("record", "reexecute", "abort")


class StaleDetectionAbort(RuntimeError):
    """Raised by ``stale_policy="abort"`` when an asynchronously verified
    boundary turns out dirty after its values were already consumed."""


def _count_stale_dirty(outcomes: Sequence[SectionOutcome]) -> int:
    """Stale outcomes whose verification found the boundary dirty — the
    outcomes the trainer's staleness policy acts on."""
    return sum(
        1 for o in outcomes
        if o.stale and o.report is not None and o.report.detected > 0
    )


class AttentionTimingHooks(AttentionHooks):
    """Measures wall-clock time spent inside attention forward passes."""

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0
        self._starts: Dict[int, float] = {}

    def on_attention_start(self, layer_index: int, step: int) -> None:
        self._starts[layer_index] = time.perf_counter()

    def on_attention_end(self, layer_index: int, step: int) -> None:
        start = self._starts.pop(layer_index, None)
        if start is not None:
            self.total_seconds += time.perf_counter() - start
            self.calls += 1

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0
        self._starts.clear()


def clip_gradients(model: Module, max_norm: float) -> float:
    """Clip the global gradient norm to ``max_norm``; returns the pre-clip norm.

    Non-finite gradients are left untouched so a genuinely corrupted backward
    pass still surfaces as a non-trainable state rather than being silently
    zeroed — matching how real training stacks hit NaN losses.  The square
    sums run on each gradient's owning backend; only the accumulated scalar
    crosses to the host.
    """
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    if not grads:
        return 0.0
    total = 0.0
    for g in grads:
        xp = namespace_of(g)
        total += float(xp.sum(xp.astype(g, xp.float64) ** 2))
    norm = math.sqrt(total)
    if not math.isfinite(norm):
        return norm
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in model.parameters():
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


@dataclass
class TrainerConfig:
    """Trainer hyper-parameters.

    Attributes
    ----------
    learning_rate, weight_decay, max_grad_norm:
        AdamW settings (defaults follow GLUE fine-tuning practice).
    checkpoint_every:
        Save a checkpoint every N steps (0 disables checkpointing).  The
        paper's baseline checkpoints every step.
    restore_on_non_trainable:
        When a step produces a NaN loss (or NaN weights), restore the latest
        checkpoint and re-execute the step — the checkpoint/restore recovery
        of Figure 11.
    max_retries_per_step:
        Safety bound on how many times a step is re-executed after restores
        (shared with the stale re-execution policy).
    stale_policy:
        What to do when an async checker reports a *stale* dirty boundary —
        a fault detected only after the producing step's values were
        consumed (bounded by the checker's ``max_pending_steps``):

        * ``"record"`` (default) — count it in the step result and continue;
        * ``"reexecute"`` — checkpoint-free recovery: settle all in-flight
          verifications, restore the in-memory snapshot taken before the
          *oldest* step still inside the staleness window (guaranteed to
          predate the fault), and re-execute the current batch from that
          clean state (transient faults do not recur).  The snapshots are
          plain in-memory state-dict copies held in a deque of length
          ``max_pending_steps + 1`` — no checkpoint manager, no disk.
          Clean intermediate updates inside the window are discarded; that
          is the price of the staleness bound.  Bounded by
          ``max_retries_per_step``.
        * ``"abort"`` — raise :class:`StaleDetectionAbort` so the caller can
          stop the run.  The abort is raised at the step where the stale
          verdict *surfaced*; the fault itself occurred within the previous
          ``max_pending_steps`` steps.
    """

    learning_rate: float = 5e-4
    weight_decay: float = 0.01
    max_grad_norm: float = 1.0
    checkpoint_every: int = 0
    restore_on_non_trainable: bool = False
    max_retries_per_step: int = 2
    log_every: int = 0
    stale_policy: str = "record"

    def __post_init__(self) -> None:
        if self.stale_policy not in STALE_POLICIES:
            raise ValueError(
                f"unknown stale_policy {self.stale_policy!r}; expected one of {STALE_POLICIES}"
            )


class Trainer:
    """Fine-tuning loop with instrumentation hooks.

    Parameters
    ----------
    model:
        Any :class:`repro.models.classification.SequenceClassificationModel`.
    optimizer:
        Defaults to AdamW with the config's learning rate.
    checker:
        Optional :class:`ATTNChecker`; its per-section detection statistics
        and ABFT timers are folded into the step results.
    fault_hooks:
        Optional additional hooks (e.g. a fault injector) that run *before*
        the checker, mimicking a fault striking during the GEMM.
    checkpoints:
        Optional checkpoint manager implementing the recovery baseline.
    """

    def __init__(
        self,
        model,
        config: Optional[TrainerConfig] = None,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[LRSchedule] = None,
        checker: Optional[ATTNChecker] = None,
        fault_hooks: Optional[Sequence[AttentionHooks]] = None,
        checkpoints: Optional[CheckpointManager] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = optimizer or AdamW(
            model.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        self.scheduler = scheduler
        self.checker = checker
        self.checkpoints = checkpoints
        self.metrics = TrainingMetrics()
        self.attention_timer = AttentionTimingHooks()
        self.global_step = 0

        hooks: List[AttentionHooks] = [self.attention_timer]
        if fault_hooks:
            hooks.extend(fault_hooks)
        if checker is not None:
            hooks.append(checker)
        self._hooks = ComposedHooks(hooks)
        self.model.set_attention_hooks(self._hooks)
        if checker is not None and checker.array_backend is not None:
            logger.info(
                "checker pinned to array backend %s (%s); host<->backend copies "
                "will be recorded under the xfer/* timer keys",
                checker.array_backend.name, checker.array_backend.device_info(),
            )
        # Rollback window for the stale re-execution policy: in-memory
        # (step, model_state, optimizer_state) snapshots, oldest first.
        # State dicts are backend-native, so a device-resident model's
        # rollback window stays on the device.
        self._stale_snapshots: Deque[Tuple[int, Dict[str, object], Dict[str, object]]] = deque()

    @property
    def array_backend(self) -> str:
        """Array backend the attached checker runs its checksum chain on.

        ``"auto"`` means the checker follows whatever arrays the model's
        attention layers produce (the default); a concrete name means the
        fused engine is pinned to that registered backend and any
        host/device copies it pays are visible as
        ``checker.transfer_seconds()``.  Without a checker this is the model
        substrate's own backend (see :attr:`model_array_backend`).
        """
        if self.checker is None:
            return self.model_array_backend
        return self.checker.array_backend_name

    @property
    def model_array_backend(self) -> str:
        """Name of the array backend the model substrate's parameters live on
        (``"numpy"`` for the historical pure-NumPy substrate)."""
        backend = getattr(self.model, "array_backend", None)
        return "numpy" if backend is None else backend.name

    def _stale_snapshot_window(self) -> int:
        """Snapshots to retain for stale rollback (0 disables snapshotting)."""
        if (
            self.checker is not None
            and self.checker.config.async_verification
            and self.config.stale_policy == "reexecute"
        ):
            return self.checker.config.max_pending_steps + 1
        return 0

    # -- single step -----------------------------------------------------------------

    def _forward_backward(self, batch: Dict[str, np.ndarray]) -> float:
        self.model.zero_grad()
        output = self.model(
            batch["input_ids"],
            attention_mask=batch.get("attention_mask"),
            labels=batch["labels"],
        )
        loss_value = output.loss_value
        if math.isfinite(loss_value):
            output.loss.backward()
            clip_gradients(self.model, self.config.max_grad_norm)
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
        return loss_value

    def _weights_healthy(self) -> bool:
        return all(
            bool(p.xp.all(p.xp.isfinite(p.data))) for p in self.model.parameters()
        )

    def _rollback_to_clean_state(self) -> bool:
        """Restore the oldest retained stale-window snapshot (pre-fault).

        Re-seeds the window with the restored clean state, so a stale verdict
        on a re-executed pass (or on the next few steps) still finds a
        pre-fault snapshot.  Returns ``False`` when no snapshot exists.

        Snapshots carry the optimiser's float64 moment checksums, so an
        AdamW restore re-derives and compares them — a snapshot whose moment
        slots were poisoned while parked in the rollback window raises
        :class:`repro.training.optimizer.OptimizerStateCorruption` here
        instead of being silently reinstalled.
        """
        if not self._stale_snapshots:
            return False
        _, model_state, optimizer_state = self._stale_snapshots[0]
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optimizer_state)
        self._stale_snapshots.clear()
        self._stale_snapshots.append(
            (self.global_step, self.model.state_dict(), self.optimizer.state_dict())
        )
        return True

    def _end_step_verifications(self) -> int:
        """Close the step's checker work; count stale dirty boundaries.

        Flushes deferred verifications synchronously, or — for an async
        checker — submits the step's checksum snapshot to the worker and
        harvests whatever verification results have completed, so detections
        land in step results as soon as they exist.  A no-op for
        immediate-mode checkers.
        """
        if self.checker is None:
            return 0
        return _count_stale_dirty(self.checker.end_step())

    def train_step(self, batch: Dict[str, np.ndarray]) -> StepResult:
        """Run one optimisation step on ``batch`` and record its metrics."""
        self.global_step += 1
        attention_before = self.attention_timer.total_seconds
        abft_before = self.checker.critical_path_seconds() if self.checker else 0.0
        corrections_before = self.checker.stats.total_corrections if self.checker else 0
        detections_before = self.checker.stats.total_detections if self.checker else 0

        restored = False
        reexecuted = False
        window = self._stale_snapshot_window()
        if window:
            self._stale_snapshots.append(
                (self.global_step, self.model.state_dict(), self.optimizer.state_dict())
            )
            while len(self._stale_snapshots) > window:
                self._stale_snapshots.popleft()

        start = time.perf_counter()
        loss_value = self._forward_backward(batch)
        stale_dirty = self._end_step_verifications()
        total_stale = stale_dirty

        if stale_dirty and self.config.stale_policy == "abort":
            raise StaleDetectionAbort(
                f"step {self.global_step}: {stale_dirty} boundary check(s) verified dirty "
                f"after their values were consumed (stale_policy='abort'); the fault "
                f"occurred within the checker's max_pending_steps staleness window"
            )
        if stale_dirty and self.config.stale_policy == "reexecute":
            # Checkpoint-free bounded-staleness recovery.  The dirty boundary
            # may belong to an earlier step whose corrupted optimizer update
            # is already in the weights, so simply re-running the batch would
            # stack a second update on top of the bad one.  Instead: settle
            # every in-flight verification, roll model and optimizer back to
            # the oldest retained snapshot — taken before any step still
            # inside the staleness window, hence before the fault — and
            # re-execute the current batch once from that clean state.
            retries = 0
            while stale_dirty and retries < self.config.max_retries_per_step:
                retries += 1
                reexecuted = True
                total_stale += _count_stale_dirty(self.checker.drain())
                self._rollback_to_clean_state()
                loss_value = self._forward_backward(batch)
                stale_dirty = self._end_step_verifications()
                total_stale += stale_dirty

        non_trainable = math.isnan(loss_value) or not self._weights_healthy()
        restore_stale = 0
        if non_trainable and self.config.restore_on_non_trainable and self.checkpoints and self.checkpoints.latest:
            retries = 0
            while non_trainable and retries < self.config.max_retries_per_step:
                retries += 1
                self.checkpoints.restore(self.model, self.optimizer)
                restored = True
                loss_value = self._forward_backward(batch)
                # Stale verdicts harvested here are already answered by a
                # stronger recovery (checkpoint restore + re-execution), so
                # 'reexecute' just records them; 'abort' still aborts below.
                restore_stale += self._end_step_verifications()
                non_trainable = math.isnan(loss_value) or not self._weights_healthy()
            total_stale += restore_stale
        if restore_stale and self.config.stale_policy == "abort":
            raise StaleDetectionAbort(
                f"step {self.global_step}: {restore_stale} boundary check(s) verified "
                f"dirty during checkpoint-restore re-execution (stale_policy='abort')"
            )

        if self.config.checkpoint_every and self.global_step % self.config.checkpoint_every == 0:
            self.checkpoints = self.checkpoints or CheckpointManager()
            self.checkpoints.save(self.global_step, self.model, self.optimizer)
        elapsed = time.perf_counter() - start

        result = StepResult(
            step=self.global_step,
            loss=loss_value,
            step_seconds=elapsed,
            attention_seconds=self.attention_timer.total_seconds - attention_before,
            abft_seconds=(self.checker.critical_path_seconds() - abft_before) if self.checker else 0.0,
            corrections=(self.checker.stats.total_corrections - corrections_before) if self.checker else 0,
            detections=(self.checker.stats.total_detections - detections_before) if self.checker else 0,
            restored_from_checkpoint=restored,
            stale_detections=total_stale,
            reexecuted=reexecuted,
        )
        self.metrics.record(result)
        if self.config.log_every and self.global_step % self.config.log_every == 0:
            logger.info("step %d loss %.4f (%.1f ms)", self.global_step, loss_value, elapsed * 1e3)
        return result

    def drain_verifications(
        self, batch: Optional[Dict[str, np.ndarray]] = None
    ) -> List[SectionOutcome]:
        """Barrier for queued/async verification work.

        Waits until every in-flight step batch has been verified and folds
        late-arriving detection/correction counters into the last recorded
        step result, so aggregate ``StepResult`` counters match an
        immediate-mode run.  Worker exceptions surface here rather than being
        swallowed.  A no-op without a checker or in immediate mode.

        The staleness policy applies at this barrier too — a fault striking
        the last step of a run surfaces only here.  ``abort`` raises
        :class:`StaleDetectionAbort` (after folding the counters);
        ``reexecute`` rolls back to the oldest retained snapshot and, when
        ``batch`` is given (:meth:`train` passes the epoch's last batch),
        re-executes it from the clean state — without a batch the rollback
        alone discards the corrupted update.
        """
        if self.checker is None:
            return []
        detections_before = self.checker.stats.total_detections
        corrections_before = self.checker.stats.total_corrections
        outcomes = self.checker.drain()
        stale_dirty = _count_stale_dirty(outcomes)
        last = self.metrics.steps[-1] if self.metrics.steps else None

        if stale_dirty and self.config.stale_policy == "reexecute":
            self._rollback_to_clean_state()
            if batch is not None:
                loss_value = self._forward_backward(batch)
                extra = self.checker.end_step() + self.checker.drain()
                outcomes = outcomes + extra
                stale_dirty += _count_stale_dirty(extra)
                if last is not None:
                    last.loss = loss_value
                    last.reexecuted = True

        if last is not None:
            last.detections += self.checker.stats.total_detections - detections_before
            last.corrections += self.checker.stats.total_corrections - corrections_before
            last.stale_detections += stale_dirty

        if stale_dirty and self.config.stale_policy == "abort":
            raise StaleDetectionAbort(
                f"end-of-run drain: {stale_dirty} boundary check(s) verified dirty "
                f"after their values were consumed (stale_policy='abort')"
            )
        return outcomes

    # -- epochs ----------------------------------------------------------------------

    def train(self, batches: Iterable[Dict[str, np.ndarray]], epochs: int = 1) -> TrainingMetrics:
        """Train for ``epochs`` passes over ``batches`` (a reusable iterable)."""
        batch_list = list(batches)
        if not batch_list:
            raise ValueError("no batches provided")
        self.model.train()
        for _ in range(epochs):
            for batch in batch_list:
                self.train_step(batch)
            # Settle in-flight async verifications so epoch-level metrics are
            # complete (and the staleness policy has acted) before the
            # boundary is recorded; the last batch backs re-execution.
            self.drain_verifications(batch=batch_list[-1])
            self.metrics.end_epoch()
        return self.metrics

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, batches: Iterable[Dict[str, np.ndarray]]) -> Dict[str, float]:
        """Compute mean loss and accuracy without updating weights."""
        self.model.eval()
        losses: List[float] = []
        correct = 0
        total = 0
        for batch in batches:
            output = self.model(
                batch["input_ids"],
                attention_mask=batch.get("attention_mask"),
                labels=batch["labels"],
            )
            losses.append(output.loss_value)
            logits = output.logits.data
            predictions = namespace_of(logits).argmax(logits, axis=-1)
            if not isinstance(predictions, np.ndarray):
                predictions = backend_of(logits).to_numpy(predictions)
            correct += int((predictions == batch["labels"]).sum())
            total += len(batch["labels"])
        self.model.train()
        return {
            "loss": float(np.nanmean(losses)) if losses else float("nan"),
            "accuracy": correct / total if total else float("nan"),
        }

"""Training loop with fault-tolerance instrumentation.

:class:`Trainer` fine-tunes a sequence-classification model and exposes the
measurements the paper's evaluation is built on:

* per-step loss and the non-trainable-state signal (NaN loss),
* wall-clock time of the attention blocks and of the whole step,
* ABFT time (when an :class:`repro.core.ATTNChecker` is attached),
* optional per-step checkpointing with restore-on-NaN — the baseline recovery
  strategy of Figure 11.

Fault injectors and the ATTNChecker are both
:class:`repro.nn.AttentionHooks`; the trainer composes them (injector first,
checker second) and attaches them to every attention layer of the model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.attention_checker import ATTNChecker
from repro.nn.attention import AttentionHooks, ComposedHooks
from repro.nn.module import Module
from repro.training.checkpoint import CheckpointManager
from repro.training.metrics import StepResult, TrainingMetrics
from repro.training.optimizer import AdamW, Optimizer
from repro.training.scheduler import LRSchedule
from repro.utils.logging import get_logger

__all__ = ["TrainerConfig", "Trainer", "AttentionTimingHooks", "clip_gradients"]

logger = get_logger("training.trainer")


class AttentionTimingHooks(AttentionHooks):
    """Measures wall-clock time spent inside attention forward passes."""

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0
        self._starts: Dict[int, float] = {}

    def on_attention_start(self, layer_index: int, step: int) -> None:
        self._starts[layer_index] = time.perf_counter()

    def on_attention_end(self, layer_index: int, step: int) -> None:
        start = self._starts.pop(layer_index, None)
        if start is not None:
            self.total_seconds += time.perf_counter() - start
            self.calls += 1

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0
        self._starts.clear()


def clip_gradients(model: Module, max_norm: float) -> float:
    """Clip the global gradient norm to ``max_norm``; returns the pre-clip norm.

    Non-finite gradients are left untouched so a genuinely corrupted backward
    pass still surfaces as a non-trainable state rather than being silently
    zeroed — matching how real training stacks hit NaN losses.
    """
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    if not grads:
        return 0.0
    total = 0.0
    for g in grads:
        total += float(np.sum(g.astype(np.float64) ** 2))
    norm = math.sqrt(total)
    if not math.isfinite(norm):
        return norm
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in model.parameters():
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


@dataclass
class TrainerConfig:
    """Trainer hyper-parameters.

    Attributes
    ----------
    learning_rate, weight_decay, max_grad_norm:
        AdamW settings (defaults follow GLUE fine-tuning practice).
    checkpoint_every:
        Save a checkpoint every N steps (0 disables checkpointing).  The
        paper's baseline checkpoints every step.
    restore_on_non_trainable:
        When a step produces a NaN loss (or NaN weights), restore the latest
        checkpoint and re-execute the step — the checkpoint/restore recovery
        of Figure 11.
    max_retries_per_step:
        Safety bound on how many times a step is re-executed after restores.
    """

    learning_rate: float = 5e-4
    weight_decay: float = 0.01
    max_grad_norm: float = 1.0
    checkpoint_every: int = 0
    restore_on_non_trainable: bool = False
    max_retries_per_step: int = 2
    log_every: int = 0


class Trainer:
    """Fine-tuning loop with instrumentation hooks.

    Parameters
    ----------
    model:
        Any :class:`repro.models.classification.SequenceClassificationModel`.
    optimizer:
        Defaults to AdamW with the config's learning rate.
    checker:
        Optional :class:`ATTNChecker`; its per-section detection statistics
        and ABFT timers are folded into the step results.
    fault_hooks:
        Optional additional hooks (e.g. a fault injector) that run *before*
        the checker, mimicking a fault striking during the GEMM.
    checkpoints:
        Optional checkpoint manager implementing the recovery baseline.
    """

    def __init__(
        self,
        model,
        config: Optional[TrainerConfig] = None,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[LRSchedule] = None,
        checker: Optional[ATTNChecker] = None,
        fault_hooks: Optional[Sequence[AttentionHooks]] = None,
        checkpoints: Optional[CheckpointManager] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = optimizer or AdamW(
            model.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        self.scheduler = scheduler
        self.checker = checker
        self.checkpoints = checkpoints
        self.metrics = TrainingMetrics()
        self.attention_timer = AttentionTimingHooks()
        self.global_step = 0

        hooks: List[AttentionHooks] = [self.attention_timer]
        if fault_hooks:
            hooks.extend(fault_hooks)
        if checker is not None:
            hooks.append(checker)
        self._hooks = ComposedHooks(hooks)
        self.model.set_attention_hooks(self._hooks)

    # -- single step -----------------------------------------------------------------

    def _forward_backward(self, batch: Dict[str, np.ndarray]) -> float:
        self.model.zero_grad()
        output = self.model(
            batch["input_ids"],
            attention_mask=batch.get("attention_mask"),
            labels=batch["labels"],
        )
        loss_value = output.loss_value
        if math.isfinite(loss_value):
            output.loss.backward()
            clip_gradients(self.model, self.config.max_grad_norm)
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
        return loss_value

    def _weights_healthy(self) -> bool:
        return all(np.isfinite(p.data).all() for p in self.model.parameters())

    def train_step(self, batch: Dict[str, np.ndarray]) -> StepResult:
        """Run one optimisation step on ``batch`` and record its metrics."""
        self.global_step += 1
        attention_before = self.attention_timer.total_seconds
        abft_before = self.checker.overhead_seconds() if self.checker else 0.0
        corrections_before = self.checker.stats.total_corrections if self.checker else 0
        detections_before = self.checker.stats.total_detections if self.checker else 0

        restored = False
        start = time.perf_counter()
        loss_value = self._forward_backward(batch)
        if self.checker is not None:
            # Flush deferred section verifications (fused engine's batched
            # mode) so this step's detections land in this step's result; a
            # no-op for immediate-mode checkers.
            self.checker.end_step()

        non_trainable = math.isnan(loss_value) or not self._weights_healthy()
        if non_trainable and self.config.restore_on_non_trainable and self.checkpoints and self.checkpoints.latest:
            retries = 0
            while non_trainable and retries < self.config.max_retries_per_step:
                retries += 1
                self.checkpoints.restore(self.model, self.optimizer)
                restored = True
                loss_value = self._forward_backward(batch)
                if self.checker is not None:
                    self.checker.end_step()
                non_trainable = math.isnan(loss_value) or not self._weights_healthy()

        if self.config.checkpoint_every and self.global_step % self.config.checkpoint_every == 0:
            self.checkpoints = self.checkpoints or CheckpointManager()
            self.checkpoints.save(self.global_step, self.model, self.optimizer)
        elapsed = time.perf_counter() - start

        result = StepResult(
            step=self.global_step,
            loss=loss_value,
            step_seconds=elapsed,
            attention_seconds=self.attention_timer.total_seconds - attention_before,
            abft_seconds=(self.checker.overhead_seconds() - abft_before) if self.checker else 0.0,
            corrections=(self.checker.stats.total_corrections - corrections_before) if self.checker else 0,
            detections=(self.checker.stats.total_detections - detections_before) if self.checker else 0,
            restored_from_checkpoint=restored,
        )
        self.metrics.record(result)
        if self.config.log_every and self.global_step % self.config.log_every == 0:
            logger.info("step %d loss %.4f (%.1f ms)", self.global_step, loss_value, elapsed * 1e3)
        return result

    # -- epochs ----------------------------------------------------------------------

    def train(self, batches: Iterable[Dict[str, np.ndarray]], epochs: int = 1) -> TrainingMetrics:
        """Train for ``epochs`` passes over ``batches`` (a reusable iterable)."""
        batch_list = list(batches)
        if not batch_list:
            raise ValueError("no batches provided")
        self.model.train()
        for _ in range(epochs):
            for batch in batch_list:
                self.train_step(batch)
            self.metrics.end_epoch()
        return self.metrics

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, batches: Iterable[Dict[str, np.ndarray]]) -> Dict[str, float]:
        """Compute mean loss and accuracy without updating weights."""
        self.model.eval()
        losses: List[float] = []
        correct = 0
        total = 0
        for batch in batches:
            output = self.model(
                batch["input_ids"],
                attention_mask=batch.get("attention_mask"),
                labels=batch["labels"],
            )
            losses.append(output.loss_value)
            predictions = np.argmax(output.logits.data, axis=-1)
            correct += int((predictions == batch["labels"]).sum())
            total += len(batch["labels"])
        self.model.train()
        return {
            "loss": float(np.nanmean(losses)) if losses else float("nan"),
            "accuracy": correct / total if total else float("nan"),
        }

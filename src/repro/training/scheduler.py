"""Learning-rate schedules."""

from __future__ import annotations

from typing import Optional

from repro.training.optimizer import Optimizer

__all__ = ["LRSchedule", "ConstantSchedule", "LinearWarmupSchedule"]


class LRSchedule:
    """Base class: maps a step index to a learning rate and applies it."""

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.current_step = 0

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and install the new learning rate."""
        self.current_step += 1
        lr = self.lr_at(self.current_step)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule(LRSchedule):
    """Always the base learning rate."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class LinearWarmupSchedule(LRSchedule):
    """Linear warm-up followed by linear decay to zero (BERT fine-tuning default)."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        base_lr: Optional[float] = None,
    ) -> None:
        super().__init__(optimizer, base_lr=base_lr)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must lie in [0, total_steps]")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        denom = max(1, self.total_steps - self.warmup_steps)
        return self.base_lr * remaining / denom

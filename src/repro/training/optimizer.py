"""Optimisers: SGD (with momentum) and AdamW.

AdamW is the optimiser used for the GLUE fine-tuning runs the paper evaluates;
SGD is provided for the unit tests and as a cheaper baseline.  Both operate on
the :class:`repro.nn.Parameter` leaves of a model and keep their moment /
velocity slots **on each parameter's owning array backend** — a device-resident
model's optimiser state never round-trips through host memory, and the update
itself runs through the backend's own array math.

``state_dict`` / ``load_state_dict`` likewise move values through the owning
backend: snapshots stay backend-native (the trainer's in-memory rollback
window keeps device state on device), and loading adopts foreign values (host
arrays from an on-disk checkpoint) back into each parameter's backend.

Optimizer-state integrity
-------------------------
AdamW additionally keeps a **float64 running checksum** over its moment
buffers: after every :meth:`AdamW.step` the per-slot sums of ``m`` and ``v``
are recorded, ``state_dict`` embeds them, and ``load_state_dict`` re-derives
the sums from the restored buffers and compares — a restore from a poisoned
snapshot (a bit flip striking a moment slot between save and restore) raises
:class:`OptimizerStateCorruption` instead of silently reinstalling the
corrupted state.  :meth:`AdamW.verify_moments` runs the same comparison
against the *live* buffers; :class:`repro.training.CheckpointManager` calls
it before every save so corruption never makes it into a checkpoint.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.backend import backend_of
from repro.nn.module import Parameter
from repro.utils.versioning import bump_weights_version

__all__ = ["Optimizer", "OptimizerStateCorruption", "SGD", "AdamW"]


class OptimizerStateCorruption(RuntimeError):
    """A float64 moment-buffer checksum mismatched its recorded value.

    Raised when the AdamW moment slots no longer sum to what the optimiser
    recorded after its last update — a silent corruption of optimizer state
    (the territory checkpoints and rollback snapshots would otherwise
    propagate instead of repair)."""


def _moment_sum(value: Any) -> float:
    """Float64 sum of one moment buffer, on the buffer's own backend.

    The reduction runs device-side (only the 0-d result crosses to host), so
    checksumming a device-resident optimiser costs no array round-trip.  A
    given backend's reduction is deterministic for a given buffer, and the
    recompute always runs on the same backend that recorded the sum, so the
    checksum comparison is equality, not a tolerance."""
    xp = np if type(value) is np.ndarray else backend_of(value).xp
    return float(xp.sum(value, dtype=xp.float64))


def _sums_match(recorded: float, recomputed: float) -> bool:
    """Exact checksum comparison; two NaN sums compare equal (a NaN moment
    is a non-trainable-state problem, not a storage-corruption one)."""
    if np.isnan(recorded) and np.isnan(recomputed):
        return True
    return recorded == recomputed


class Optimizer:
    """Base class: holds the parameter list and the common step/zero_grad API."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update to every parameter with a gradient.

        Contract for implementations: after mutating (or rebinding) any
        ``param.data``, call
        :func:`repro.utils.versioning.bump_weights_version` exactly once —
        the fused checker's weight-derived encoding caches key their
        validity on it.  An implementation that updates *in place* and
        skips the bump would silently serve stale checksums.
        """
        raise NotImplementedError

    # -- checkpointing ------------------------------------------------------------

    def _copy_slot(self, index: int, value: Any) -> Any:
        """A backend-native copy of one per-parameter state slot.

        Values foreign to the parameter's backend (host arrays loaded from an
        ``.npz`` checkpoint) are adopted first; native values are just deep
        copied, so snapshot/restore of a device-resident optimiser stays on
        the device.
        """
        backend = self.parameters[index].backend
        if not backend.is_backend_array(value):
            value = backend.asarray(value)
        return backend.copy(value)

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state (step count + per-parameter slots)."""
        return {"step_count": np.asarray(self.step_count)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.step_count = int(state.get("step_count", 0))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[Any]] = [None] * len(self.parameters)

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = p.xp.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad
        # Weight-derived checksum encodings (rowcs(W_V), the fused [W_Q|W_K]
        # operand) are stale from here on.
        bump_weights_version()

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        for i, v in enumerate(self._velocity):
            if v is not None:
                state[f"velocity.{i}"] = self._copy_slot(i, v)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        for i in range(len(self.parameters)):
            key = f"velocity.{i}"
            self._velocity[i] = self._copy_slot(i, state[key]) if key in state else None


class AdamW(Optimizer):
    """AdamW (decoupled weight decay), the standard fine-tuning optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-5,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[Any]] = [None] * len(self.parameters)
        self._v: List[Optional[Any]] = [None] * len(self.parameters)
        # Float64 running checksum over the moment buffers: (sum(m), sum(v))
        # per slot, recorded right after each update writes the buffers.
        self._moment_sums: List[Optional[Tuple[float, float]]] = [None] * len(self.parameters)

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias_c1 = 1.0 - self.beta1**t
        bias_c2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self._m[i] is None:
                self._m[i] = p.xp.zeros_like(p.data)
                self._v[i] = p.xp.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            self._moment_sums[i] = (_moment_sum(self._m[i]), _moment_sum(self._v[i]))
            m_hat = self._m[i] / bias_c1
            v_hat = self._v[i] / bias_c2
            update = m_hat / (p.xp.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update
        # Invalidate weight-derived checksum caches (see SGD.step).
        bump_weights_version()

    # -- moment-buffer integrity ----------------------------------------------------

    def verify_moments(self) -> None:
        """Recompute the float64 moment sums and compare to the running record.

        Raises :class:`OptimizerStateCorruption` on the first slot whose live
        ``m``/``v`` buffer no longer reproduces the sum recorded when
        :meth:`step` last wrote it.  O(state size) adds, no copies beyond the
        reduction — the cheap invariant check run before every checkpoint
        save and on stale-rollback restore.
        """
        for i in range(len(self.parameters)):
            if self._m[i] is None or self._moment_sums[i] is None:
                continue
            recorded_m, recorded_v = self._moment_sums[i]
            live_m, live_v = _moment_sum(self._m[i]), _moment_sum(self._v[i])
            if not (_sums_match(recorded_m, live_m) and _sums_match(recorded_v, live_v)):
                raise OptimizerStateCorruption(
                    f"AdamW moment buffers for parameter slot {i} do not reproduce "
                    f"their recorded float64 checksums "
                    f"(m: recorded {recorded_m!r}, live {live_m!r}; "
                    f"v: recorded {recorded_v!r}, live {live_v!r}) — optimizer "
                    "state was corrupted after the last update"
                )

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        for i in range(len(self.parameters)):
            if self._m[i] is not None:
                state[f"m.{i}"] = self._copy_slot(i, self._m[i])
                state[f"v.{i}"] = self._copy_slot(i, self._v[i])
                if self._moment_sums[i] is not None:
                    state[f"moment_checksum.{i}"] = np.asarray(
                        self._moment_sums[i], dtype=np.float64
                    )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        for i in range(len(self.parameters)):
            self._m[i] = self._copy_slot(i, state[f"m.{i}"]) if f"m.{i}" in state else None
            self._v[i] = self._copy_slot(i, state[f"v.{i}"]) if f"v.{i}" in state else None
            self._moment_sums[i] = None
            if self._m[i] is None:
                continue
            sums = (_moment_sum(self._m[i]), _moment_sum(self._v[i]))
            key = f"moment_checksum.{i}"
            if key in state:
                recorded = np.asarray(state[key], dtype=np.float64)
                recorded_m, recorded_v = float(recorded[0]), float(recorded[1])
                if not (_sums_match(recorded_m, sums[0]) and _sums_match(recorded_v, sums[1])):
                    raise OptimizerStateCorruption(
                        f"restored AdamW moment buffers for parameter slot {i} do not "
                        f"reproduce the snapshot's float64 checksums "
                        f"(m: recorded {recorded_m!r}, restored {sums[0]!r}; "
                        f"v: recorded {recorded_v!r}, restored {sums[1]!r}) — the "
                        "snapshot was poisoned between save and restore"
                    )
                self._moment_sums[i] = (recorded_m, recorded_v)
            else:
                # Legacy snapshot without checksums: adopt the restored
                # buffers as the new ground truth.
                self._moment_sums[i] = sums

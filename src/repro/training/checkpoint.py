"""Checkpoint / restore: the baseline recovery strategy of the paper.

The state of the art the paper compares against (Figure 11) checkpoints the
model every training step and, when a non-trainable state (NaN loss) is
encountered, restores the last checkpoint and re-executes the step.  This
module implements both an in-memory and an on-disk variant and records the
save / load timings that feed the recovery-overhead comparison.
"""

from __future__ import annotations

import io
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.training.optimizer import Optimizer

__all__ = ["CheckpointRecord", "CheckpointManager"]


@dataclass
class CheckpointRecord:
    """One saved checkpoint plus bookkeeping about how expensive it was."""

    step: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    save_seconds: float
    nbytes: int
    path: Optional[str] = None


class CheckpointManager:
    """Per-step checkpointing with restore, in memory or on disk.

    Parameters
    ----------
    directory:
        When given, checkpoints are serialised to ``.npz`` files under this
        directory (closer to the real recovery cost the paper measures);
        otherwise deep copies are kept in memory.
    keep_last:
        How many checkpoints to retain (older ones are dropped/deleted).
    """

    def __init__(self, directory: Optional[str] = None, keep_last: int = 2) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        self.directory = directory
        self.keep_last = keep_last
        self.records: List[CheckpointRecord] = []
        self.total_save_seconds = 0.0
        self.total_load_seconds = 0.0
        self.num_saves = 0
        self.num_restores = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- save -----------------------------------------------------------------------

    def save(self, step: int, model: Module, optimizer: Optional[Optimizer] = None) -> CheckpointRecord:
        """Snapshot model (and optimiser) state after training step ``step``."""
        start = time.perf_counter()
        model_state = model.state_dict()
        opt_state = optimizer.state_dict() if optimizer is not None else {}
        nbytes = sum(v.nbytes for v in model_state.values()) + sum(
            np.asarray(v).nbytes for v in opt_state.values()
        )
        path = None
        if self.directory is not None:
            path = os.path.join(self.directory, f"checkpoint_{step:08d}.npz")
            payload = {f"model/{k}": v for k, v in model_state.items()}
            payload.update({f"optim/{k}": np.asarray(v) for k, v in opt_state.items()})
            np.savez(path, **payload)
        elapsed = time.perf_counter() - start
        record = CheckpointRecord(
            step=step,
            model_state=model_state,
            optimizer_state=opt_state,
            save_seconds=elapsed,
            nbytes=nbytes,
            path=path,
        )
        self.records.append(record)
        self.total_save_seconds += elapsed
        self.num_saves += 1
        self._prune()
        return record

    def _prune(self) -> None:
        while len(self.records) > self.keep_last:
            dropped = self.records.pop(0)
            if dropped.path and os.path.exists(dropped.path):
                os.remove(dropped.path)

    # -- restore ---------------------------------------------------------------------

    @property
    def latest(self) -> Optional[CheckpointRecord]:
        return self.records[-1] if self.records else None

    def restore(
        self,
        model: Module,
        optimizer: Optional[Optimizer] = None,
        record: Optional[CheckpointRecord] = None,
    ) -> CheckpointRecord:
        """Load the latest (or a given) checkpoint back into model/optimiser."""
        record = record or self.latest
        if record is None:
            raise RuntimeError("no checkpoint available to restore from")
        start = time.perf_counter()
        if record.path is not None and os.path.exists(record.path):
            with np.load(record.path) as data:
                model_state = {
                    k[len("model/"):]: data[k] for k in data.files if k.startswith("model/")
                }
                opt_state = {
                    k[len("optim/"):]: data[k] for k in data.files if k.startswith("optim/")
                }
        else:
            model_state = record.model_state
            opt_state = record.optimizer_state
        model.load_state_dict(model_state)
        if optimizer is not None and opt_state:
            optimizer.load_state_dict(opt_state)
        elapsed = time.perf_counter() - start
        self.total_load_seconds += elapsed
        self.num_restores += 1
        return record

    # -- reporting --------------------------------------------------------------------

    @property
    def mean_save_seconds(self) -> float:
        return self.total_save_seconds / self.num_saves if self.num_saves else 0.0

    @property
    def mean_load_seconds(self) -> float:
        return self.total_load_seconds / self.num_restores if self.num_restores else 0.0

"""Checkpoint / restore: the baseline recovery strategy of the paper.

The state of the art the paper compares against (Figure 11) checkpoints the
model every training step and, when a non-trainable state (NaN loss) is
encountered, restores the last checkpoint and re-executes the step.  This
module implements both an in-memory and an on-disk variant and records the
save / load timings that feed the recovery-overhead comparison.

Array backends
--------------
Model and optimiser state dicts are *backend-native* (a device-resident model
snapshots device arrays).  In-memory checkpoints keep them that way — restore
never leaves the device.  On-disk checkpoints must serialise host NumPy: the
manager exports every foreign array through its owning backend before
``np.savez`` and lets ``load_state_dict`` adopt host arrays back on restore,
with both crossings timed under the ``xfer/d2h`` / ``xfer/h2d`` keys of the
optional :class:`~repro.utils.timing.TimingRegistry` — checkpoint transfer
cost reports on the same axis as the checker's pinned-engine copies.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import backend_of
from repro.nn.module import Module
from repro.training.optimizer import Optimizer
from repro.utils.timing import TimingRegistry, XFER_D2H, XFER_H2D

__all__ = ["CheckpointRecord", "CheckpointManager"]


@dataclass
class CheckpointRecord:
    """One saved checkpoint plus bookkeeping about how expensive it was."""

    step: int
    model_state: Dict[str, Any]
    optimizer_state: Dict[str, Any]
    save_seconds: float
    nbytes: int
    path: Optional[str] = None


def _state_nbytes(state: Dict[str, Any]) -> int:
    """Total payload bytes of one state dict, on any array backend."""
    total = 0
    for value in state.values():
        backend = backend_of(value)
        shape = tuple(getattr(value, "shape", ()))
        total += int(np.prod(shape, dtype=np.int64)) * backend.dtype_of(value).itemsize
    return total


class CheckpointManager:
    """Per-step checkpointing with restore, in memory or on disk.

    Parameters
    ----------
    directory:
        When given, checkpoints are serialised to ``.npz`` files under this
        directory (closer to the real recovery cost the paper measures);
        otherwise backend-native deep copies are kept in memory.
    keep_last:
        How many checkpoints to retain (older ones are dropped/deleted).
    timers:
        Optional :class:`TimingRegistry`; host export on save and backend
        adoption on restore are recorded under ``xfer/d2h`` / ``xfer/h2d``.
        On the pure-NumPy substrate both keys accumulate nothing — no foreign
        arrays means no conversions.
    """

    def __init__(self, directory: Optional[str] = None, keep_last: int = 2,
                 timers: Optional[TimingRegistry] = None) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        self.directory = directory
        self.keep_last = keep_last
        self.timers = timers
        self.records: List[CheckpointRecord] = []
        self.total_save_seconds = 0.0
        self.total_load_seconds = 0.0
        self.num_saves = 0
        self.num_restores = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _timed_xfer(self, key: str):
        return self.timers.measure(key) if self.timers is not None else nullcontext()

    def _export_host(self, state: Dict[str, Any]) -> Dict[str, np.ndarray]:
        """Export a backend-native state dict to host NumPy for serialisation.

        Host arrays pass straight through; each foreign array is exported via
        its owning backend with the copy timed under ``xfer/d2h``.
        """
        host: Dict[str, np.ndarray] = {}
        for key, value in state.items():
            # Exact base-class ndarrays are host data; anything else
            # (device tensors, registered ndarray-subclass wrappers) exports
            # through the backend that owns it.
            if type(value) is np.ndarray:
                host[key] = value
                continue
            backend = backend_of(value)
            with self._timed_xfer(XFER_D2H):
                host[key] = backend.to_numpy(value)
        return host

    # -- save -----------------------------------------------------------------------

    def save(self, step: int, model: Module, optimizer: Optional[Optimizer] = None) -> CheckpointRecord:
        """Snapshot model (and optimiser) state after training step ``step``.

        Optimisers that keep a moment-buffer checksum (AdamW) are verified
        first — a corrupted moment slot raises
        :class:`repro.training.optimizer.OptimizerStateCorruption` instead of
        being persisted into the checkpoint it would later poison a restore
        from.
        """
        if optimizer is not None:
            verify = getattr(optimizer, "verify_moments", None)
            if verify is not None:
                verify()
        start = time.perf_counter()
        model_state = model.state_dict()
        opt_state = optimizer.state_dict() if optimizer is not None else {}
        nbytes = _state_nbytes(model_state) + _state_nbytes(opt_state)
        path = None
        if self.directory is not None:
            path = os.path.join(self.directory, f"checkpoint_{step:08d}.npz")
            payload = {f"model/{k}": v for k, v in self._export_host(model_state).items()}
            payload.update(
                {f"optim/{k}": np.asarray(v) for k, v in self._export_host(opt_state).items()}
            )
            np.savez(path, **payload)
        elapsed = time.perf_counter() - start
        record = CheckpointRecord(
            step=step,
            model_state=model_state,
            optimizer_state=opt_state,
            save_seconds=elapsed,
            nbytes=nbytes,
            path=path,
        )
        self.records.append(record)
        self.total_save_seconds += elapsed
        self.num_saves += 1
        self._prune()
        return record

    def _prune(self) -> None:
        while len(self.records) > self.keep_last:
            dropped = self.records.pop(0)
            if dropped.path and os.path.exists(dropped.path):
                os.remove(dropped.path)

    # -- restore ---------------------------------------------------------------------

    @property
    def latest(self) -> Optional[CheckpointRecord]:
        return self.records[-1] if self.records else None

    def restore(
        self,
        model: Module,
        optimizer: Optional[Optimizer] = None,
        record: Optional[CheckpointRecord] = None,
    ) -> CheckpointRecord:
        """Load the latest (or a given) checkpoint back into model/optimiser.

        On-disk checkpoints hand host arrays to ``load_state_dict``, which
        adopts them into each parameter's backend — for a device-resident
        model that adoption is the h2d leg of the restore and is timed under
        ``xfer/h2d``.  In-memory records are already backend-native, so no
        transfer time accrues.
        """
        record = record or self.latest
        if record is None:
            raise RuntimeError("no checkpoint available to restore from")
        start = time.perf_counter()
        from_disk = record.path is not None and os.path.exists(record.path)
        if from_disk:
            with np.load(record.path) as data:
                model_state = {
                    k[len("model/"):]: data[k] for k in data.files if k.startswith("model/")
                }
                opt_state = {
                    k[len("optim/"):]: data[k] for k in data.files if k.startswith("optim/")
                }
        else:
            model_state = record.model_state
            opt_state = record.optimizer_state
        sample = next(iter(model_state.values()), None)
        params = model.parameters()
        adopting = (
            from_disk and sample is not None and bool(params)
            and not params[0].backend.is_backend_array(sample)
        )
        with self._timed_xfer(XFER_H2D) if adopting else nullcontext():
            model.load_state_dict(model_state)
            if optimizer is not None and opt_state:
                optimizer.load_state_dict(opt_state)
        elapsed = time.perf_counter() - start
        self.total_load_seconds += elapsed
        self.num_restores += 1
        return record

    # -- reporting --------------------------------------------------------------------

    @property
    def mean_save_seconds(self) -> float:
        return self.total_save_seconds / self.num_saves if self.num_saves else 0.0

    @property
    def mean_load_seconds(self) -> float:
        return self.total_load_seconds / self.num_restores if self.num_restores else 0.0

"""Training substrate: optimisers, LR schedules, trainer and checkpointing.

The trainer exposes exactly the signals the paper's evaluation needs:

* per-step loss (whose NaN-ness defines a *non-trainable state*),
* per-step attention-block and whole-step wall-clock time (overhead studies),
* hooks for fault-injection campaigns, and
* a checkpoint/restore manager implementing the baseline recovery strategy
  that Figure 11 compares ATTNChecker against, and
* a data-parallel trainer (``parallel``) sharding the global batch across
  worker-driven model replicas whose gradient all-reduce is itself
  checksum-protected through :mod:`repro.comm`.
"""

from repro.training.optimizer import SGD, AdamW, Optimizer, OptimizerStateCorruption
from repro.training.scheduler import ConstantSchedule, LinearWarmupSchedule, LRSchedule
from repro.training.checkpoint import CheckpointManager, CheckpointRecord
from repro.training.metrics import TrainingMetrics, StepResult
from repro.training.trainer import (
    STALE_POLICIES,
    StaleDetectionAbort,
    Trainer,
    TrainerConfig,
)
from repro.training.parallel import (
    EXECUTORS,
    DataParallelConfig,
    DataParallelTrainer,
    ParallelStepResult,
    ReplicaSpec,
)

__all__ = [
    "STALE_POLICIES",
    "EXECUTORS",
    "StaleDetectionAbort",
    "Optimizer",
    "OptimizerStateCorruption",
    "SGD",
    "AdamW",
    "LRSchedule",
    "ConstantSchedule",
    "LinearWarmupSchedule",
    "CheckpointManager",
    "CheckpointRecord",
    "Trainer",
    "TrainerConfig",
    "TrainingMetrics",
    "StepResult",
    "ReplicaSpec",
    "DataParallelConfig",
    "DataParallelTrainer",
    "ParallelStepResult",
]

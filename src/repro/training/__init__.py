"""Training substrate: optimisers, LR schedules, trainer and checkpointing.

The trainer exposes exactly the signals the paper's evaluation needs:

* per-step loss (whose NaN-ness defines a *non-trainable state*),
* per-step attention-block and whole-step wall-clock time (overhead studies),
* hooks for fault-injection campaigns, and
* a checkpoint/restore manager implementing the baseline recovery strategy
  that Figure 11 compares ATTNChecker against.
"""

from repro.training.optimizer import SGD, AdamW, Optimizer
from repro.training.scheduler import ConstantSchedule, LinearWarmupSchedule, LRSchedule
from repro.training.checkpoint import CheckpointManager, CheckpointRecord
from repro.training.metrics import TrainingMetrics, StepResult
from repro.training.trainer import (
    STALE_POLICIES,
    StaleDetectionAbort,
    Trainer,
    TrainerConfig,
)

__all__ = [
    "STALE_POLICIES",
    "StaleDetectionAbort",
    "Optimizer",
    "SGD",
    "AdamW",
    "LRSchedule",
    "ConstantSchedule",
    "LinearWarmupSchedule",
    "CheckpointManager",
    "CheckpointRecord",
    "Trainer",
    "TrainerConfig",
    "TrainingMetrics",
    "StepResult",
]

"""GPT-Neo: pre-LN causal decoder with alternating global / local attention.

GPT-Neo (Black et al. / EleutherAI) differs from GPT-2 mainly in that every
other layer restricts attention to a local window (256 tokens in the released
models).  The alternation matters for this reproduction because it changes the
attention-score sparsity and therefore the fault-propagation footprint of the
``qk`` / ``apv`` GEMMs in those layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.classification import CausalDecodingMixin, SequenceClassificationModel
from repro.models.config import ModelConfig
from repro.models.gpt2 import last_token_pool
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import ModuleList
from repro.nn.transformer import TransformerLayer
from repro.tensor import autograd as ag

__all__ = ["GPTNeoForSequenceClassification"]


class GPTNeoForSequenceClassification(CausalDecodingMixin, SequenceClassificationModel):
    """GPT-Neo decoder with a linear classification head on the last token."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__(config, array_backend=array_backend)
        rng = rng if rng is not None else np.random.default_rng(0)
        d = config.hidden_size
        backend = array_backend

        self.token_embeddings = Embedding(config.vocab_size, d, rng=rng, backend=backend)
        self.position_embeddings = Embedding(config.max_seq_len, d, rng=rng, backend=backend)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)

        self.layers = ModuleList(
            [
                TransformerLayer(
                    hidden_size=d,
                    num_heads=config.num_heads,
                    intermediate_size=config.intermediate_size,
                    dropout_p=config.dropout,
                    norm_style="pre_ln",
                    causal=True,
                    local_window=(
                        config.local_attention_window
                        if config.layer_uses_local_attention(i)
                        else None
                    ),
                    layer_index=i,
                    rng=rng,
                    backend=backend,
                )
                for i in range(config.num_layers)
            ]
        )
        self.final_norm = LayerNorm(d, backend=backend)
        self.score = Linear(d, config.num_labels, rng=rng, bias=False, backend=backend)

    def encode(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        batch, seq_len = (int(s) for s in input_ids.shape)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        hidden = ag.add(self.token_embeddings(input_ids), self.position_embeddings(positions))
        hidden = self.embedding_dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask)
        return self.final_norm(hidden)

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        return last_token_pool(hidden, attention_mask)

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.score(pooled)

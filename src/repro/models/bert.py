"""BERT-style bidirectional encoder for sequence classification.

Post-LN encoder with learned token / position / segment embeddings and a
``[CLS]``-token pooler, as in Devlin et al. (2018).  Used for the
``bert-small`` / ``bert-base`` / ``bert-large`` entries of the paper's
evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.classification import ClassificationHead, SequenceClassificationModel
from repro.models.config import ModelConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import ModuleList
from repro.nn.transformer import TransformerLayer
from repro.tensor import autograd as ag

__all__ = ["BertForSequenceClassification"]


class BertForSequenceClassification(SequenceClassificationModel):
    """BERT encoder with a sequence-classification head."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__(config, array_backend=array_backend)
        rng = rng if rng is not None else np.random.default_rng(0)
        d = config.hidden_size
        backend = array_backend

        self.token_embeddings = Embedding(config.vocab_size, d, rng=rng, backend=backend)
        self.position_embeddings = Embedding(config.max_seq_len, d, rng=rng, backend=backend)
        self.token_type_embeddings = Embedding(config.type_vocab_size, d, rng=rng, backend=backend)
        self.embedding_norm = LayerNorm(d, backend=backend)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)

        self.layers = ModuleList(
            [
                TransformerLayer(
                    hidden_size=d,
                    num_heads=config.num_heads,
                    intermediate_size=config.intermediate_size,
                    dropout_p=config.dropout,
                    norm_style="post_ln",
                    causal=False,
                    layer_index=i,
                    rng=rng,
                    backend=backend,
                )
                for i in range(config.num_layers)
            ]
        )
        self.head = ClassificationHead(d, config.num_labels, config.dropout, rng, backend=backend)

    def encode(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        batch, seq_len = (int(s) for s in input_ids.shape)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        token_types = np.zeros((batch, seq_len), dtype=np.int64)

        embeddings = ag.add(
            ag.add(self.token_embeddings(input_ids), self.position_embeddings(positions)),
            self.token_type_embeddings(token_types),
        )
        hidden = self.embedding_dropout(self.embedding_norm(embeddings))
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask)
        return hidden

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        # [CLS] pooling: take the first token of every sequence.
        return _take_first_token(hidden)

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.head(pooled)


def _take_first_token(hidden: ag.Tensor) -> ag.Tensor:
    """Select ``hidden[:, 0, :]`` differentiably via a one-hot contraction."""
    batch, seq_len, d = hidden.shape
    selector = np.zeros((seq_len, 1))
    selector[0, 0] = 1.0
    # (B, S, D) -> (B, D, S) @ (S, 1) -> (B, D, 1) -> (B, D)
    transposed = ag.transpose(hidden, (0, 2, 1))
    picked = ag.matmul(transposed, selector)
    return ag.reshape(picked, (batch, d))

"""RoBERTa: a robustly-optimised BERT variant.

Architecturally identical to BERT (post-LN encoder); RoBERTa drops the
segment (token-type) embedding in practice and uses a different pooling head
(``<s>`` token through a dense+tanh inside the classification head).  We keep
the implementation separate from :mod:`repro.models.bert` so experiments can
instrument the two families independently, as the paper does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.classification import ClassificationHead, SequenceClassificationModel
from repro.models.config import ModelConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import ModuleList
from repro.nn.transformer import TransformerLayer
from repro.tensor import autograd as ag

__all__ = ["RobertaForSequenceClassification"]


class RobertaForSequenceClassification(SequenceClassificationModel):
    """RoBERTa encoder with a sequence-classification head."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__(config, array_backend=array_backend)
        rng = rng if rng is not None else np.random.default_rng(0)
        d = config.hidden_size
        backend = array_backend

        self.token_embeddings = Embedding(config.vocab_size, d, rng=rng, backend=backend)
        self.position_embeddings = Embedding(config.max_seq_len, d, rng=rng, backend=backend)
        self.embedding_norm = LayerNorm(d, backend=backend)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)

        self.layers = ModuleList(
            [
                TransformerLayer(
                    hidden_size=d,
                    num_heads=config.num_heads,
                    intermediate_size=config.intermediate_size,
                    dropout_p=config.dropout,
                    norm_style="post_ln",
                    causal=False,
                    layer_index=i,
                    rng=rng,
                    backend=backend,
                )
                for i in range(config.num_layers)
            ]
        )
        self.head = ClassificationHead(d, config.num_labels, config.dropout, rng, backend=backend)

    def encode(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        batch, seq_len = (int(s) for s in input_ids.shape)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        embeddings = ag.add(self.token_embeddings(input_ids), self.position_embeddings(positions))
        hidden = self.embedding_dropout(self.embedding_norm(embeddings))
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask)
        return hidden

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        # RoBERTa pools the <s> (first) token; the dense+tanh lives in the head.
        batch, seq_len, d = hidden.shape
        selector = np.zeros((seq_len, 1))
        selector[0, 0] = 1.0
        picked = ag.matmul(ag.transpose(hidden, (0, 2, 1)), selector)
        return ag.reshape(picked, (batch, d))

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.head(pooled)

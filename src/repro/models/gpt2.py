"""GPT-2: pre-LN causal decoder for sequence classification.

Follows Radford et al. (2019): learned token and position embeddings, pre-LN
transformer blocks with causal attention, a final layer norm, and — as in the
HuggingFace ``GPT2ForSequenceClassification`` used by the paper — the logits
of the *last non-padding token* feed the classification head.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.classification import CausalDecodingMixin, SequenceClassificationModel
from repro.models.config import ModelConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import ModuleList
from repro.nn.transformer import TransformerLayer
from repro.tensor import autograd as ag

__all__ = ["GPT2ForSequenceClassification", "last_token_pool"]


def last_token_pool(hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
    """Select the hidden state of the last non-padding token of each sequence.

    Implemented as a differentiable one-hot contraction so the autograd graph
    stays intact (no fancy indexing op is needed in the engine).
    """
    batch, seq_len, d = hidden.shape
    if attention_mask is None:
        last_index = np.full(batch, seq_len - 1, dtype=np.int64)
    else:
        lengths = np.asarray(attention_mask).sum(axis=-1).astype(np.int64)
        last_index = np.clip(lengths - 1, 0, seq_len - 1)
    selector = np.zeros((batch, seq_len, 1))
    selector[np.arange(batch), last_index, 0] = 1.0
    picked = ag.matmul(ag.transpose(hidden, (0, 2, 1)), selector)  # (B, D, 1)
    return ag.reshape(picked, (batch, d))


class GPT2ForSequenceClassification(CausalDecodingMixin, SequenceClassificationModel):
    """GPT-2 decoder with a linear classification head on the last token."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__(config, array_backend=array_backend)
        rng = rng if rng is not None else np.random.default_rng(0)
        d = config.hidden_size
        backend = array_backend

        self.token_embeddings = Embedding(config.vocab_size, d, rng=rng, backend=backend)
        self.position_embeddings = Embedding(config.max_seq_len, d, rng=rng, backend=backend)
        self.embedding_dropout = Dropout(config.dropout, rng=rng)

        self.layers = ModuleList(
            [
                TransformerLayer(
                    hidden_size=d,
                    num_heads=config.num_heads,
                    intermediate_size=config.intermediate_size,
                    dropout_p=config.dropout,
                    norm_style="pre_ln",
                    causal=True,
                    layer_index=i,
                    rng=rng,
                    backend=backend,
                )
                for i in range(config.num_layers)
            ]
        )
        self.final_norm = LayerNorm(d, backend=backend)
        self.score = Linear(d, config.num_labels, rng=rng, bias=False, backend=backend)

    def encode(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        batch, seq_len = (int(s) for s in input_ids.shape)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        hidden = ag.add(self.token_embeddings(input_ids), self.position_embeddings(positions))
        hidden = self.embedding_dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask)
        return self.final_norm(hidden)

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        return last_token_pool(hidden, attention_mask)

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.score(pooled)

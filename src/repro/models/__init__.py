"""LLM model zoo used by the paper's evaluation.

Four model families are implemented from scratch on :mod:`repro.nn`:

* **BERT** (small / base / large) — post-LN bidirectional encoder,
* **RoBERTa** — BERT architecture with RoBERTa hyper-parameters,
* **GPT-2** — pre-LN causal decoder,
* **GPT-Neo** — pre-LN causal decoder with alternating global / local
  attention layers.

Each family is available in two sizes:

* ``"tiny"`` — reduced hidden size / depth so fine-tuning steps run in
  milliseconds on CPU.  Used by every experiment that actually trains
  (Tables 2 & 4, Figure 6, detection/correction campaigns).
* ``"paper"`` — the real published dimensions (e.g. BERT-base 768/12/12).
  Used by the analytical workload and performance models (Table 3,
  Figures 7–12), where only FLOP/byte counts matter.
"""

from repro.models.config import ModelConfig
from repro.models.classification import SequenceClassifierOutput
from repro.models.bert import BertForSequenceClassification
from repro.models.gpt2 import GPT2ForSequenceClassification
from repro.models.gpt_neo import GPTNeoForSequenceClassification
from repro.models.roberta import RobertaForSequenceClassification
from repro.models.registry import (
    MODEL_FAMILIES,
    PAPER_MODEL_NAMES,
    build_model,
    get_config,
    list_models,
)

__all__ = [
    "ModelConfig",
    "SequenceClassifierOutput",
    "BertForSequenceClassification",
    "RobertaForSequenceClassification",
    "GPT2ForSequenceClassification",
    "GPTNeoForSequenceClassification",
    "build_model",
    "get_config",
    "list_models",
    "MODEL_FAMILIES",
    "PAPER_MODEL_NAMES",
]

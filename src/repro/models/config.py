"""Model configuration objects.

A :class:`ModelConfig` fully determines an architecture: family, width, depth,
attention geometry and classification head.  The registry
(:mod:`repro.models.registry`) provides named configs in two sizes — ``tiny``
(runnable on CPU in milliseconds) and ``paper`` (the published dimensions,
used by the analytical performance model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters for one model.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"bert-base"``.
    family:
        One of ``"bert"``, ``"roberta"``, ``"gpt2"``, ``"gpt-neo"``.
    vocab_size, hidden_size, num_layers, num_heads, intermediate_size:
        The usual transformer dimensions.
    max_seq_len:
        Maximum (and, for the experiments, actual) sequence length.
    num_labels:
        Output classes of the sequence-classification head (MRPC: 2).
    dropout:
        Dropout probability applied to attention probabilities, residuals and
        the classifier.
    norm_style:
        ``"post_ln"`` for encoder models, ``"pre_ln"`` for decoder models.
    causal:
        Whether attention is autoregressive.
    local_attention_window:
        GPT-Neo's local-attention window; ``None`` disables local attention.
    local_attention_every:
        Apply local attention on every ``local_attention_every``-th layer
        (GPT-Neo alternates global / local, i.e. 2).
    """

    name: str
    family: str
    vocab_size: int
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    max_seq_len: int
    num_labels: int = 2
    dropout: float = 0.1
    norm_style: str = "post_ln"
    causal: bool = False
    local_attention_window: Optional[int] = None
    local_attention_every: int = 2
    type_vocab_size: int = 2

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads:
            raise ValueError(
                f"hidden_size={self.hidden_size} must be divisible by num_heads={self.num_heads}"
            )
        if self.norm_style not in ("post_ln", "pre_ln"):
            raise ValueError(f"invalid norm_style {self.norm_style!r}")
        if self.family not in ("bert", "roberta", "gpt2", "gpt-neo"):
            raise ValueError(f"unknown model family {self.family!r}")

    @property
    def head_dim(self) -> int:
        """Per-head dimension d_k."""
        return self.hidden_size // self.num_heads

    def layer_uses_local_attention(self, layer_index: int) -> bool:
        """Whether layer ``layer_index`` uses GPT-Neo-style local attention."""
        if self.local_attention_window is None:
            return False
        return (layer_index % self.local_attention_every) == 1

    def scaled(self, **overrides) -> "ModelConfig":
        """Return a copy with some fields replaced (used to derive tiny configs)."""
        return replace(self, **overrides)

    # -- parameter / FLOP accounting (used by Table 3 and the perf model) -------

    def attention_parameter_count(self) -> int:
        """Parameters of one attention block (4 projection matrices + biases)."""
        d = self.hidden_size
        return 4 * (d * d + d)

    def layer_parameter_count(self) -> int:
        """Parameters of one transformer layer (attention + FFN + 2 layer norms)."""
        d, i = self.hidden_size, self.intermediate_size
        ffn = d * i + i + i * d + d
        norms = 4 * d
        return self.attention_parameter_count() + ffn + norms

    def parameter_count(self) -> int:
        """Approximate total parameter count (embeddings + layers + head)."""
        d = self.hidden_size
        emb = self.vocab_size * d + self.max_seq_len * d
        if self.family in ("bert", "roberta"):
            emb += self.type_vocab_size * d
        head = d * d + d + d * self.num_labels + self.num_labels
        return emb + self.num_layers * self.layer_parameter_count() + head

    def attention_gemm_flops(self, batch_size: int, seq_len: Optional[int] = None) -> int:
        """FLOPs of the six GEMMs of one attention block for one forward pass.

        Each GEMM of shape (m, k) x (k, n) counts 2*m*k*n FLOPs.
        """
        s = seq_len if seq_len is not None else self.max_seq_len
        d = self.hidden_size
        dh = self.head_dim
        h = self.num_heads
        b = batch_size
        proj = 3 * 2 * b * s * d * d              # X W_Q, X W_K, X W_V
        qk = 2 * b * h * s * s * dh               # Q K^T
        apv = 2 * b * h * s * s * dh              # AP V
        out = 2 * b * s * d * d                   # CL W_O
        return proj + qk + apv + out

    def attention_other_flops(self, batch_size: int, seq_len: Optional[int] = None) -> int:
        """Non-GEMM FLOPs in attention (softmax, scaling, bias adds, dropout).

        Softmax over each row of AS costs ~5 FLOPs per element (max, subtract,
        exp, sum, divide); scaling and masking ~2; bias adds ~1 per projected
        element.
        """
        s = seq_len if seq_len is not None else self.max_seq_len
        d = self.hidden_size
        h = self.num_heads
        b = batch_size
        softmax_cost = 7 * b * h * s * s
        bias_cost = 4 * b * s * d
        return softmax_cost + bias_cost

    def attention_gemm_ratio(self, batch_size: int = 8, seq_len: Optional[int] = None) -> float:
        """Fraction of attention FLOPs spent in GEMMs (Table 3)."""
        gemm = self.attention_gemm_flops(batch_size, seq_len)
        other = self.attention_other_flops(batch_size, seq_len)
        return gemm / (gemm + other)

"""Model registry: named configurations in ``paper`` and ``tiny`` sizes.

``paper`` configs carry the published dimensions and are consumed by the
analytical workload / performance models (Table 3, Figures 7–12).  ``tiny``
configs shrink width, depth and sequence length so real training steps run in
milliseconds on CPU; they drive the fault-injection, propagation and
training-loss experiments (Tables 2 & 4, Figure 6, Section 5.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.models.bert import BertForSequenceClassification
from repro.models.config import ModelConfig
from repro.models.gpt2 import GPT2ForSequenceClassification
from repro.models.gpt_neo import GPTNeoForSequenceClassification
from repro.models.roberta import RobertaForSequenceClassification

__all__ = [
    "PAPER_CONFIGS",
    "TINY_CONFIGS",
    "MODEL_FAMILIES",
    "PAPER_MODEL_NAMES",
    "get_config",
    "build_model",
    "list_models",
]

# ---------------------------------------------------------------------------
# Published ("paper") dimensions
# ---------------------------------------------------------------------------

PAPER_CONFIGS: Dict[str, ModelConfig] = {
    "bert-small": ModelConfig(
        name="bert-small", family="bert", vocab_size=30522, hidden_size=512,
        num_layers=4, num_heads=8, intermediate_size=2048, max_seq_len=128,
    ),
    "bert-base": ModelConfig(
        name="bert-base", family="bert", vocab_size=30522, hidden_size=768,
        num_layers=12, num_heads=12, intermediate_size=3072, max_seq_len=128,
    ),
    "bert-large": ModelConfig(
        name="bert-large", family="bert", vocab_size=30522, hidden_size=1024,
        num_layers=24, num_heads=16, intermediate_size=4096, max_seq_len=128,
    ),
    "gpt2": ModelConfig(
        name="gpt2", family="gpt2", vocab_size=50257, hidden_size=768,
        num_layers=12, num_heads=12, intermediate_size=3072, max_seq_len=128,
        norm_style="pre_ln", causal=True,
    ),
    "gpt-neo": ModelConfig(
        name="gpt-neo", family="gpt-neo", vocab_size=50257, hidden_size=768,
        num_layers=12, num_heads=12, intermediate_size=3072, max_seq_len=128,
        norm_style="pre_ln", causal=True, local_attention_window=256,
    ),
    "roberta": ModelConfig(
        name="roberta", family="roberta", vocab_size=50265, hidden_size=768,
        num_layers=12, num_heads=12, intermediate_size=3072, max_seq_len=128,
    ),
}

#: The four models of the main evaluation (Figures 6, 8, 11; Tables 2-4).
PAPER_MODEL_NAMES: List[str] = ["bert-base", "gpt2", "gpt-neo", "roberta"]

#: The six models of the overhead study (Figure 7).
OVERHEAD_MODEL_NAMES: List[str] = [
    "bert-small", "bert-base", "bert-large", "gpt2", "gpt-neo", "roberta",
]

MODEL_FAMILIES: Dict[str, Callable[..., object]] = {
    "bert": BertForSequenceClassification,
    "roberta": RobertaForSequenceClassification,
    "gpt2": GPT2ForSequenceClassification,
    "gpt-neo": GPTNeoForSequenceClassification,
}

# ---------------------------------------------------------------------------
# Tiny (CPU-trainable) dimensions
# ---------------------------------------------------------------------------


def _tiny(config: ModelConfig, hidden: int, layers: int, heads: int, seq: int) -> ModelConfig:
    return config.scaled(
        vocab_size=512,
        hidden_size=hidden,
        num_layers=layers,
        num_heads=heads,
        intermediate_size=hidden * 4,
        max_seq_len=seq,
        local_attention_window=(8 if config.local_attention_window is not None else None),
    )


TINY_CONFIGS: Dict[str, ModelConfig] = {
    "bert-small": _tiny(PAPER_CONFIGS["bert-small"], hidden=32, layers=2, heads=2, seq=16),
    "bert-base": _tiny(PAPER_CONFIGS["bert-base"], hidden=48, layers=2, heads=4, seq=16),
    "bert-large": _tiny(PAPER_CONFIGS["bert-large"], hidden=64, layers=3, heads=4, seq=16),
    "gpt2": _tiny(PAPER_CONFIGS["gpt2"], hidden=48, layers=2, heads=4, seq=16),
    "gpt-neo": _tiny(PAPER_CONFIGS["gpt-neo"], hidden=48, layers=2, heads=4, seq=16),
    "roberta": _tiny(PAPER_CONFIGS["roberta"], hidden=48, layers=2, heads=4, seq=16),
}


# ---------------------------------------------------------------------------
# Public accessors
# ---------------------------------------------------------------------------


def list_models(size: str = "paper") -> List[str]:
    """Names of all registered models for the given size."""
    table = PAPER_CONFIGS if size == "paper" else TINY_CONFIGS
    return sorted(table)


def get_config(name: str, size: str = "tiny") -> ModelConfig:
    """Look up a named config.

    Parameters
    ----------
    name:
        One of :func:`list_models`.
    size:
        ``"tiny"`` (CPU-trainable) or ``"paper"`` (published dimensions).
    """
    if size == "paper":
        table = PAPER_CONFIGS
    elif size == "tiny":
        table = TINY_CONFIGS
    else:
        raise ValueError(f"unknown size {size!r}; expected 'tiny' or 'paper'")
    if name not in table:
        raise KeyError(f"unknown model {name!r}; known models: {sorted(table)}")
    return table[name]


def build_model(
    name: str,
    size: str = "tiny",
    rng: Optional[np.random.Generator] = None,
    num_labels: Optional[int] = None,
    array_backend: Union[None, str, ArrayBackend] = None,
    **overrides,
):
    """Instantiate a model by name.

    Parameters
    ----------
    name:
        Registry name (``"bert-base"``, ``"gpt2"``, ``"gpt-neo"``,
        ``"roberta"``, ...).
    size:
        ``"tiny"`` or ``"paper"``.
    rng:
        Generator for weight initialisation.
    num_labels:
        Override the classification head width.
    array_backend:
        Array backend the model substrate lives on: a registered backend name
        (``"numpy"``, ``"torch"``, ``"cupy"``, ``"auto"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for the
        historical pure-NumPy substrate.  Weights are initialised on the host
        from ``rng`` (identical for identical seeds on every backend) and
        adopted once; forward, backward and optimiser updates then run
        natively on the chosen backend.
    overrides:
        Any other :class:`ModelConfig` field to replace.
    """
    config = get_config(name, size=size)
    updates = dict(overrides)
    if num_labels is not None:
        updates["num_labels"] = num_labels
    if updates:
        config = config.scaled(**updates)
    if isinstance(array_backend, str):
        array_backend = get_backend(array_backend)
    model_cls = MODEL_FAMILIES[config.family]
    return model_cls(config, rng=rng, array_backend=array_backend)

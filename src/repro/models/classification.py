"""Shared pieces of the sequence-classification models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.config import ModelConfig
from repro.nn.attention import AttentionHooks, MultiHeadAttention
from repro.nn.layers import Dropout, Linear, TanhActivation
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = ["SequenceClassifierOutput", "ClassificationHead", "SequenceClassificationModel"]


@dataclass
class SequenceClassifierOutput:
    """Return value of every model's forward pass.

    Attributes
    ----------
    logits:
        Classification logits tensor of shape ``(batch, num_labels)``.
    loss:
        Scalar loss tensor when labels were provided, else ``None``.
    hidden_states:
        Final hidden states ``(batch, seq, hidden)``.
    """

    logits: ag.Tensor
    loss: Optional[ag.Tensor] = None
    hidden_states: Optional[ag.Tensor] = None

    @property
    def loss_value(self) -> Optional[float]:
        """The loss as a Python float (NaN signals a non-trainable state)."""
        return None if self.loss is None else float(self.loss.data)


class ClassificationHead(Module):
    """Pooler + classifier used by the encoder models (BERT / RoBERTa)."""

    def __init__(self, hidden_size: int, num_labels: int, dropout_p: float,
                 rng: np.random.Generator, backend: Optional[ArrayBackend] = None) -> None:
        super().__init__()
        self.dense = Linear(hidden_size, hidden_size, rng=rng, backend=backend)
        self.activation = TanhActivation()
        self.dropout = Dropout(dropout_p, rng=rng)
        self.out_proj = Linear(hidden_size, num_labels, rng=rng, backend=backend)

    def forward(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.out_proj(self.dropout(self.activation(self.dense(pooled))))


class SequenceClassificationModel(Module):
    """Base class providing hook plumbing and the loss head.

    Subclasses implement :meth:`encode` returning final hidden states; this
    base class handles pooling, classification and loss computation, and the
    uniform interface the trainer / fault-injection campaigns rely on:

    * :meth:`attention_layers` — every :class:`MultiHeadAttention` in order;
    * :meth:`set_attention_hooks` — attach one hook object to all of them.

    ``array_backend`` is the :class:`~repro.backend.ArrayBackend` the model's
    parameters live on (``None`` = the NumPy substrate); subclasses thread it
    into every layer so forward, backward and the optimiser update all run on
    that backend.
    """

    def __init__(self, config: ModelConfig,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__()
        self.config = config
        self.array_backend = array_backend
        self.loss_fn = CrossEntropyLoss()

    # -- attention instrumentation ------------------------------------------------

    def attention_layers(self) -> List[MultiHeadAttention]:
        """All attention modules of the model, in layer order."""
        return [m for _, m in self.named_modules() if isinstance(m, MultiHeadAttention)]

    def set_attention_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach ``hooks`` to every attention layer (``None`` detaches)."""
        for layer in self.attention_layers():
            layer.set_hooks(hooks)

    # -- forward interface ---------------------------------------------------------

    def encode(
        self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]
    ) -> ag.Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        """Reduce ``(B, S, D)`` hidden states to ``(B, D)`` (family-specific)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        raise NotImplementedError  # pragma: no cover - abstract

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> SequenceClassifierOutput:
        backend = self.array_backend
        if backend is not None and backend.is_backend_array(input_ids):
            # Native token ids stay put, but must still be integer (owning the
            # array type says nothing about the dtype).
            if not np.issubdtype(backend.dtype_of(input_ids), np.integer):
                xp = backend.namespace_for(input_ids)
                input_ids = xp.astype(input_ids, xp.int64, copy=False)
        else:
            input_ids = np.asarray(input_ids, dtype=np.int64)
        hidden = self.encode(input_ids, attention_mask)
        pooled = self.pool(hidden, attention_mask)
        logits = self.classify(pooled)
        loss = None
        if labels is not None:
            loss = self.loss_fn(logits, labels)
        return SequenceClassifierOutput(logits=logits, loss=loss, hidden_states=hidden)

"""Shared pieces of the sequence-classification models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.models.config import ModelConfig
from repro.nn.attention import AttentionHooks, LayerKVCache, MultiHeadAttention
from repro.nn.layers import Dropout, Linear, TanhActivation
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = [
    "SequenceClassifierOutput",
    "ClassificationHead",
    "SequenceClassificationModel",
    "CausalDecodingMixin",
]


@dataclass
class SequenceClassifierOutput:
    """Return value of every model's forward pass.

    Attributes
    ----------
    logits:
        Classification logits tensor of shape ``(batch, num_labels)``.
    loss:
        Scalar loss tensor when labels were provided, else ``None``.
    hidden_states:
        Final hidden states ``(batch, seq, hidden)``.
    """

    logits: ag.Tensor
    loss: Optional[ag.Tensor] = None
    hidden_states: Optional[ag.Tensor] = None

    @property
    def loss_value(self) -> Optional[float]:
        """The loss as a Python float (NaN signals a non-trainable state)."""
        return None if self.loss is None else float(self.loss.data)


class ClassificationHead(Module):
    """Pooler + classifier used by the encoder models (BERT / RoBERTa)."""

    def __init__(self, hidden_size: int, num_labels: int, dropout_p: float,
                 rng: np.random.Generator, backend: Optional[ArrayBackend] = None) -> None:
        super().__init__()
        self.dense = Linear(hidden_size, hidden_size, rng=rng, backend=backend)
        self.activation = TanhActivation()
        self.dropout = Dropout(dropout_p, rng=rng)
        self.out_proj = Linear(hidden_size, num_labels, rng=rng, backend=backend)

    def forward(self, pooled: ag.Tensor) -> ag.Tensor:
        return self.out_proj(self.dropout(self.activation(self.dense(pooled))))


class CausalDecodingMixin:
    """KV-cached autoregressive decoding for the causal decoder models.

    Mixed into GPT-2 / GPT-Neo (pre-LN decoders exposing
    ``token_embeddings`` / ``position_embeddings`` / ``embedding_dropout`` /
    ``layers`` / ``final_norm`` / ``score``).  The serving path treats the
    ``score`` head as the generation head: greedy argmax over its
    ``num_labels`` outputs, which are valid next-token ids whenever
    ``num_labels <= vocab_size`` (the serving harness builds its models that
    way).  Position ids are absolute indices into the (left-)padded batch
    layout — exactly the ``arange`` positions the full-sequence
    :meth:`SequenceClassificationModel.encode` uses, so a decode of token
    ``t`` is numerically identical to re-running the full prefix forward.
    """

    def new_kv_caches(self, batch_size: int, max_len: Optional[int] = None) -> List[LayerKVCache]:
        """One empty per-layer KV cache, allocated on the model's backend."""
        config = self.config
        length = int(max_len) if max_len is not None else config.max_seq_len
        backend = self.array_backend
        xp = backend.xp if backend is not None else np
        return [
            LayerKVCache(batch_size, config.num_heads, config.head_dim, length, xp)
            for _ in self.layers
        ]

    def _embed(self, input_ids: np.ndarray, positions: np.ndarray) -> ag.Tensor:
        hidden = ag.add(self.token_embeddings(input_ids), self.position_embeddings(positions))
        return self.embedding_dropout(hidden)

    def prefill(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray],
        kv_caches: List[LayerKVCache],
    ) -> ag.Tensor:
        """Full-prompt forward that seeds ``kv_caches``; returns ``(B, S, D)``."""
        if len(kv_caches) != len(self.layers):
            raise ValueError(
                f"got {len(kv_caches)} KV caches for {len(self.layers)} layers"
            )
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch, seq_len = (int(s) for s in input_ids.shape)
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        hidden = self._embed(input_ids, positions)
        for layer, cache in zip(self.layers, kv_caches):
            hidden = layer(hidden, attention_mask=attention_mask, kv_cache=cache)
        return self.final_norm(hidden)

    def decode_step(
        self,
        input_ids: np.ndarray,
        kv_caches: List[LayerKVCache],
        attention_mask: Optional[np.ndarray] = None,
    ) -> ag.Tensor:
        """Decode one token per sequence against populated caches.

        ``input_ids`` is ``(B, 1)``; ``attention_mask`` covers the whole
        padded layout (``(B, max_len)``, 1s for positions not yet decoded)
        and must be the *same array object* every step so the attention
        layer's decode-mask cache hits.  Returns final hidden states
        ``(B, 1, D)``.
        """
        input_ids = np.asarray(input_ids, dtype=np.int64)
        if input_ids.ndim != 2 or input_ids.shape[-1] != 1:
            raise ValueError(f"decode_step expects (batch, 1) ids, got {input_ids.shape}")
        batch = int(input_ids.shape[0])
        position = kv_caches[0].length  # 0-based index of the token being decoded
        positions = np.full((batch, 1), position, dtype=np.int64)
        hidden = self._embed(input_ids, positions)
        for layer, cache in zip(self.layers, kv_caches):
            hidden = layer.forward_step(hidden, cache, attention_mask=attention_mask)
        return self.final_norm(hidden)

    def lm_logits(self, hidden: ag.Tensor) -> ag.Tensor:
        """Generation logits of the ``score`` head over ``hidden`` states."""
        return self.score(hidden)


class SequenceClassificationModel(Module):
    """Base class providing hook plumbing and the loss head.

    Subclasses implement :meth:`encode` returning final hidden states; this
    base class handles pooling, classification and loss computation, and the
    uniform interface the trainer / fault-injection campaigns rely on:

    * :meth:`attention_layers` — every :class:`MultiHeadAttention` in order;
    * :meth:`set_attention_hooks` — attach one hook object to every
      instrumented block (attention *and* feed-forward; a hook that only
      cares about attention simply ignores the FFN callbacks).

    ``array_backend`` is the :class:`~repro.backend.ArrayBackend` the model's
    parameters live on (``None`` = the NumPy substrate); subclasses thread it
    into every layer so forward, backward and the optimiser update all run on
    that backend.
    """

    def __init__(self, config: ModelConfig,
                 array_backend: Optional[ArrayBackend] = None) -> None:
        super().__init__()
        self.config = config
        self.array_backend = array_backend
        self.loss_fn = CrossEntropyLoss()

    # -- attention instrumentation ------------------------------------------------

    def attention_layers(self) -> List[MultiHeadAttention]:
        """All attention modules of the model, in layer order."""
        return [m for _, m in self.named_modules() if isinstance(m, MultiHeadAttention)]

    def feed_forward_layers(self) -> List["FeedForward"]:
        """All feed-forward modules of the model, in layer order."""
        from repro.nn.transformer import FeedForward

        return [m for _, m in self.named_modules() if isinstance(m, FeedForward)]

    def set_attention_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach ``hooks`` to every instrumented block (``None`` detaches).

        Both the attention and the feed-forward modules receive the same
        hook object; blocks outside a checker's ``protect_scope`` dispatch
        to no-op callbacks, so attention-only configurations behave exactly
        as before the FFN was instrumented.
        """
        for layer in self.attention_layers():
            layer.set_hooks(hooks)
        for ffn in self.feed_forward_layers():
            ffn.set_hooks(hooks)

    # -- forward interface ---------------------------------------------------------

    def encode(
        self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray]
    ) -> ag.Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def pool(self, hidden: ag.Tensor, attention_mask: Optional[np.ndarray]) -> ag.Tensor:
        """Reduce ``(B, S, D)`` hidden states to ``(B, D)`` (family-specific)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def classify(self, pooled: ag.Tensor) -> ag.Tensor:
        raise NotImplementedError  # pragma: no cover - abstract

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> SequenceClassifierOutput:
        backend = self.array_backend
        if backend is not None and backend.is_backend_array(input_ids):
            # Native token ids stay put, but must still be integer (owning the
            # array type says nothing about the dtype).
            if not np.issubdtype(backend.dtype_of(input_ids), np.integer):
                xp = backend.namespace_for(input_ids)
                input_ids = xp.astype(input_ids, xp.int64, copy=False)
        else:
            input_ids = np.asarray(input_ids, dtype=np.int64)
        hidden = self.encode(input_ids, attention_mask)
        pooled = self.pool(hidden, attention_mask)
        logits = self.classify(pooled)
        loss = None
        if labels is not None:
            loss = self.loss_fn(logits, labels)
        return SequenceClassifierOutput(logits=logits, loss=loss, hidden_states=hidden)

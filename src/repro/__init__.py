"""ATTNChecker reproduction: fault-tolerant attention for LLM training.

This package reproduces *ATTNChecker: Highly-Optimized Fault Tolerant
Attention for Large Language Model Training* (PPoPP 2025) as a pure-Python
library, including every substrate the paper depends on:

* :mod:`repro.backend` — pluggable array backends (NumPy reference always;
  CuPy/Torch adapters when installed) behind one protocol, so the checker
  stack runs on whatever array library owns the data;
* :mod:`repro.tensor` / :mod:`repro.nn` — autograd engine (NumPy substrate)
  over backend-generic kernels, and transformer building blocks with
  instrumented attention;
* :mod:`repro.models` — BERT / RoBERTa / GPT-2 / GPT-Neo model zoo;
* :mod:`repro.data` / :mod:`repro.training` — synthetic MRPC-style corpus,
  optimisers, trainer, checkpoint/restore baseline;
* :mod:`repro.faults` — fault injection, error propagation and vulnerability
  studies (Tables 2 and 4);
* :mod:`repro.core` — **the paper's contribution**: EEC-ABFT, the three
  protection sections, the ATTNChecker hook and the adaptive detection
  frequency optimiser;
* :mod:`repro.perfmodel` — analytical A100 / multi-GPU performance model used
  to regenerate the overhead and scalability figures;
* :mod:`repro.analysis` — workload accounting and report rendering.

Quickstart
----------
>>> import numpy as np
>>> from repro import build_model, ATTNChecker, FaultInjector, FaultSpec
>>> from repro.nn import ComposedHooks
>>> from repro.data import SyntheticMRPC
>>>
>>> model = build_model("bert-base", size="tiny")
>>> data = SyntheticMRPC(num_examples=32, max_seq_len=model.config.max_seq_len,
...                      vocab_size=model.config.vocab_size)
>>> batch = data.encode(range(8))
>>> injector = FaultInjector([FaultSpec(matrix="AS", error_type="inf")])
>>> checker = ATTNChecker()
>>> model.set_attention_hooks(ComposedHooks([injector, checker]))
>>> out = model(batch["input_ids"], attention_mask=batch["attention_mask"],
...             labels=batch["labels"])
>>> checker.stats.total_corrections > 0 and np.isfinite(out.loss_value)
True
"""

from repro.core import (
    ABFTThresholds,
    ATTNChecker,
    ATTNCheckerConfig,
    ErrorRates,
    OperationVulnerability,
    optimize_abft_frequencies,
)
from repro.faults import DetectionCorrectionCampaign, FaultInjector, FaultSpec, PropagationStudy, VulnerabilityStudy
from repro.models import build_model, get_config, list_models
from repro.training import AdamW, CheckpointManager, Trainer, TrainerConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ATTNChecker",
    "ATTNCheckerConfig",
    "ABFTThresholds",
    "ErrorRates",
    "OperationVulnerability",
    "optimize_abft_frequencies",
    "FaultInjector",
    "FaultSpec",
    "PropagationStudy",
    "VulnerabilityStudy",
    "DetectionCorrectionCampaign",
    "build_model",
    "get_config",
    "list_models",
    "Trainer",
    "TrainerConfig",
    "AdamW",
    "CheckpointManager",
]

"""Stateless vectorised array kernels and their analytical gradients.

Every function here is a *pure* NumPy function: no global state, no autograd
bookkeeping.  The autograd engine (:mod:`repro.tensor.autograd`) composes
these kernels into differentiable operations; the fault-injection and ABFT
machinery calls them directly on raw arrays.

Following the HPC-Python guides, every kernel is expressed with broadcasting
and whole-array operations — there are no Python-level loops over matrix
elements anywhere in this module.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "batched_matmul",
    "matmul_backward",
    "softmax",
    "softmax_backward",
    "log_softmax",
    "log_softmax_backward",
    "gelu",
    "gelu_backward",
    "relu",
    "relu_backward",
    "tanh",
    "tanh_backward",
    "layer_norm",
    "layer_norm_backward",
    "dropout_mask",
    "cross_entropy",
    "cross_entropy_backward",
    "one_hot",
    "unbroadcast",
]


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------

def batched_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matrix multiplication ``a @ b`` with NumPy broadcasting.

    Shapes follow the ``numpy.matmul`` convention: the last two axes are the
    matrix dimensions and all leading axes broadcast.  This is the single
    kernel underlying all six GEMMs of the attention mechanism (Figure 1 of
    the paper).
    """
    return np.matmul(a, b)


def matmul_backward(
    grad_out: np.ndarray, a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of ``c = a @ b`` w.r.t. ``a`` and ``b``.

    ``grad_a = grad_out @ b^T`` and ``grad_b = a^T @ grad_out``; broadcasting
    over leading batch axes is undone by summing (:func:`unbroadcast`).
    """
    grad_a = np.matmul(grad_out, np.swapaxes(b, -1, -2))
    grad_b = np.matmul(np.swapaxes(a, -1, -2), grad_out)
    return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    Sums over axes that were added or expanded by broadcasting.  Needed by
    every binary operation's backward pass.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting added.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------

def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``.

    NaN inputs propagate to NaN outputs (IEEE semantics); INF inputs produce
    the usual one-hot-at-infinity behaviour.  This matters for the error
    propagation study: the paper's Table 2 shows INF in the attention score
    becoming NaN after softmax (because ``inf - inf`` appears in the shifted
    exponent), and this kernel reproduces exactly that behaviour.
    """
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def softmax_backward(grad_out: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward pass of softmax given its output ``out``."""
    dot = np.sum(grad_out * out, axis=axis, keepdims=True)
    return out * (grad_out - dot)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable ``log(softmax(x))``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def log_softmax_backward(grad_out: np.ndarray, out: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward pass of log-softmax given its output ``out`` (= log p)."""
    softmax_out = np.exp(out)
    return grad_out - softmax_out * np.sum(grad_out, axis=axis, keepdims=True)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by BERT/GPT-2)."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Analytical gradient of the tanh-approximated GELU."""
    u = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du_dx = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return grad_out * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du_dx)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_backward(grad_out: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of ReLU."""
    return grad_out * (x > 0)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_backward(grad_out: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gradient of tanh given its output."""
    return grad_out * (1.0 - out**2)


# ---------------------------------------------------------------------------
# Layer normalisation
# ---------------------------------------------------------------------------

def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Layer normalisation over the last axis.

    Returns ``(out, x_hat, inv_std)`` where the last two are cached for the
    backward pass.
    """
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    return out, x_hat, inv_std


def layer_norm_backward(
    grad_out: np.ndarray,
    x_hat: np.ndarray,
    inv_std: np.ndarray,
    gamma: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of layer norm w.r.t. input, gamma and beta."""
    d = x_hat.shape[-1]
    dgamma_axes = tuple(range(x_hat.ndim - 1))
    dgamma = np.sum(grad_out * x_hat, axis=dgamma_axes)
    dbeta = np.sum(grad_out, axis=dgamma_axes)
    dxhat = grad_out * gamma
    dx = (
        inv_std
        / d
        * (
            d * dxhat
            - np.sum(dxhat, axis=-1, keepdims=True)
            - x_hat * np.sum(dxhat * x_hat, axis=-1, keepdims=True)
        )
    )
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# Dropout / losses / misc
# ---------------------------------------------------------------------------

def dropout_mask(
    shape: Tuple[int, ...], p: float, rng: np.random.Generator
) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``p``, else ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if p == 0.0:
        return np.ones(shape, dtype=np.float64)
    keep = rng.random(shape) >= p
    return keep.astype(np.float64) / (1.0 - p)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer ``indices`` into ``num_classes`` columns."""
    indices = np.asarray(indices)
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of ``logits`` (N, C) against integer ``labels`` (N,).

    Returns NaN if the logits contain NaN — this is precisely the
    "non-trainable state" signal the paper's vulnerability study keys on.
    """
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[np.arange(n), labels]
    return float(-np.mean(picked))


def cross_entropy_backward(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    n = logits.shape[0]
    p = softmax(logits, axis=-1)
    grad = p.copy()
    grad[np.arange(n), labels] -= 1.0
    return grad / n

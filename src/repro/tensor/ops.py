"""Stateless vectorised array kernels and their analytical gradients.

Every function here is a *pure, backend-generic* array kernel: no global
state, no autograd bookkeeping, and no hard-wired array library.  Kernels
dispatch through the namespace of the backend that owns their input
(:func:`repro.backend.namespace_of`), so the same code runs on NumPy host
arrays, CuPy device arrays or Torch tensors — whichever library the caller's
data lives in.  The autograd engine (:mod:`repro.tensor.autograd`) composes
these kernels into differentiable operations; the fault-injection and ABFT
machinery calls them directly on raw arrays.

Following the HPC-Python guides, every kernel is expressed with broadcasting
and whole-array operations — there are no Python-level loops over matrix
elements anywhere in this module.  On the NumPy backend each kernel executes
the exact operation sequence of the historical pure-NumPy implementation, so
results are bit-identical to earlier releases.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

import numpy as np

from repro.backend import namespace_of

__all__ = [
    "batched_matmul",
    "matmul_backward",
    "softmax",
    "softmax_backward",
    "log_softmax",
    "log_softmax_backward",
    "gelu",
    "gelu_backward",
    "relu",
    "relu_backward",
    "tanh",
    "tanh_backward",
    "layer_norm",
    "layer_norm_backward",
    "dropout_mask",
    "cross_entropy",
    "cross_entropy_backward",
    "one_hot",
    "unbroadcast",
]


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------

def batched_matmul(a: Any, b: Any) -> Any:
    """Batched matrix multiplication ``a @ b`` with NumPy-style broadcasting.

    Shapes follow the ``matmul`` convention: the last two axes are the matrix
    dimensions and all leading axes broadcast.  This is the single kernel
    underlying all six GEMMs of the attention mechanism (Figure 1 of the
    paper), dispatched to the owning backend's GEMM library.
    """
    return namespace_of(a).matmul(a, b)


def matmul_backward(
    grad_out: Any, a: Any, b: Any
) -> Tuple[Any, Any]:
    """Gradients of ``c = a @ b`` w.r.t. ``a`` and ``b``.

    ``grad_a = grad_out @ b^T`` and ``grad_b = a^T @ grad_out``; broadcasting
    over leading batch axes is undone by summing (:func:`unbroadcast`).
    """
    xp = namespace_of(grad_out)
    grad_a = xp.matmul(grad_out, xp.swapaxes(b, -1, -2))
    grad_b = xp.matmul(xp.swapaxes(a, -1, -2), grad_out)
    return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


def unbroadcast(grad: Any, shape: Tuple[int, ...]) -> Any:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    Sums over axes that were added or expanded by broadcasting.  Needed by
    every binary operation's backward pass.
    """
    shape = tuple(shape)
    if tuple(grad.shape) == shape:
        return grad
    xp = namespace_of(grad)
    # Sum over leading axes that broadcasting added.
    while grad.ndim > len(shape):
        grad = xp.sum(grad, axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = xp.sum(grad, axis=axis, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------

def softmax(x: Any, axis: int = -1) -> Any:
    """Numerically-stable softmax along ``axis``.

    NaN inputs propagate to NaN outputs (IEEE semantics); INF inputs produce
    the usual one-hot-at-infinity behaviour.  This matters for the error
    propagation study: the paper's Table 2 shows INF in the attention score
    becoming NaN after softmax (because ``inf - inf`` appears in the shifted
    exponent), and this kernel reproduces exactly that behaviour.
    """
    xp = namespace_of(x)
    shifted = x - xp.max(x, axis=axis, keepdims=True)
    e = xp.exp(shifted)
    return e / xp.sum(e, axis=axis, keepdims=True)


def softmax_backward(grad_out: Any, out: Any, axis: int = -1) -> Any:
    """Backward pass of softmax given its output ``out``."""
    xp = namespace_of(out)
    dot = xp.sum(grad_out * out, axis=axis, keepdims=True)
    return out * (grad_out - dot)


def log_softmax(x: Any, axis: int = -1) -> Any:
    """Numerically-stable ``log(softmax(x))``."""
    xp = namespace_of(x)
    shifted = x - xp.max(x, axis=axis, keepdims=True)
    return shifted - xp.log(xp.sum(xp.exp(shifted), axis=axis, keepdims=True))


def log_softmax_backward(grad_out: Any, out: Any, axis: int = -1) -> Any:
    """Backward pass of log-softmax given its output ``out`` (= log p)."""
    xp = namespace_of(out)
    softmax_out = xp.exp(out)
    return grad_out - softmax_out * xp.sum(grad_out, axis=axis, keepdims=True)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: Any) -> Any:
    """GELU activation (tanh approximation, as used by BERT/GPT-2)."""
    xp = namespace_of(x)
    return 0.5 * x * (1.0 + xp.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_backward(grad_out: Any, x: Any) -> Any:
    """Analytical gradient of the tanh-approximated GELU."""
    xp = namespace_of(x)
    u = _GELU_C * (x + 0.044715 * x**3)
    t = xp.tanh(u)
    du_dx = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return grad_out * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du_dx)


def relu(x: Any) -> Any:
    """Rectified linear unit."""
    return namespace_of(x).maximum(x, 0.0)


def relu_backward(grad_out: Any, x: Any) -> Any:
    """Gradient of ReLU."""
    return grad_out * (x > 0)


def tanh(x: Any) -> Any:
    """Hyperbolic tangent."""
    return namespace_of(x).tanh(x)


def tanh_backward(grad_out: Any, out: Any) -> Any:
    """Gradient of tanh given its output."""
    return grad_out * (1.0 - out**2)


# ---------------------------------------------------------------------------
# Layer normalisation
# ---------------------------------------------------------------------------

def layer_norm(
    x: Any,
    gamma: Any,
    beta: Any,
    eps: float = 1e-5,
) -> Tuple[Any, Any, Any]:
    """Layer normalisation over the last axis.

    Returns ``(out, x_hat, inv_std)`` where the last two are cached for the
    backward pass.  Uses the biased variance (NumPy's default) on every
    backend.
    """
    xp = namespace_of(x)
    mean = xp.mean(x, axis=-1, keepdims=True)
    var = xp.var(x, axis=-1, keepdims=True)
    inv_std = 1.0 / xp.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    return out, x_hat, inv_std


def layer_norm_backward(
    grad_out: Any,
    x_hat: Any,
    inv_std: Any,
    gamma: Any,
) -> Tuple[Any, Any, Any]:
    """Gradients of layer norm w.r.t. input, gamma and beta."""
    xp = namespace_of(x_hat)
    d = x_hat.shape[-1]
    dgamma_axes = tuple(range(x_hat.ndim - 1))
    dgamma = xp.sum(grad_out * x_hat, axis=dgamma_axes)
    dbeta = xp.sum(grad_out, axis=dgamma_axes)
    dxhat = grad_out * gamma
    dx = (
        inv_std
        / d
        * (
            d * dxhat
            - xp.sum(dxhat, axis=-1, keepdims=True)
            - x_hat * xp.sum(dxhat * x_hat, axis=-1, keepdims=True)
        )
    )
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# Dropout / losses / misc
# ---------------------------------------------------------------------------

def dropout_mask(
    shape: Tuple[int, ...], p: float, rng: np.random.Generator, xp: Any = None
) -> Any:
    """Inverted-dropout mask: zeros with probability ``p``, else ``1/(1-p)``.

    The mask is drawn on the host from the caller's NumPy ``rng`` (so runs
    are reproducible independently of the compute backend) and adopted into
    ``xp``'s array type when a non-NumPy namespace is passed.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if p == 0.0:
        mask = np.ones(shape, dtype=np.float64)
    else:
        keep = rng.random(shape) >= p
        mask = keep.astype(np.float64) / (1.0 - p)
    return mask if xp is None else xp.asarray(mask)


def one_hot(indices: Any, num_classes: int) -> Any:
    """One-hot encode integer ``indices`` into ``num_classes`` columns."""
    xp = namespace_of(indices)
    indices = xp.asarray(indices)
    if bool(xp.any(indices < 0)) or bool(xp.any(indices >= num_classes)):
        raise ValueError("index out of range for one_hot")
    out = xp.zeros(tuple(indices.shape) + (num_classes,), dtype=xp.float64)
    xp.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: Any, labels: Any) -> float:
    """Mean cross-entropy of ``logits`` (N, C) against integer ``labels`` (N,).

    Returns NaN if the logits contain NaN — this is precisely the
    "non-trainable state" signal the paper's vulnerability study keys on.
    """
    xp = namespace_of(logits)
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[xp.arange(n), xp.asarray(labels)]
    return float(-xp.mean(picked))


def cross_entropy_backward(logits: Any, labels: Any) -> Any:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    xp = namespace_of(logits)
    n = logits.shape[0]
    p = softmax(logits, axis=-1)
    grad = xp.copy(p)
    grad[xp.arange(n), xp.asarray(labels)] -= 1.0
    return grad / n

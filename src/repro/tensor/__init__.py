"""Numerical substrate: NumPy ops and a reverse-mode autograd engine.

The ATTNChecker paper builds on PyTorch + CUDA; this reproduction builds the
equivalent substrate from scratch on NumPy:

``ops``
    Stateless, vectorised array operations (batched GEMM, softmax, GELU,
    layer-norm, one-hot, …) together with their analytical gradients.  These
    are the kernels everything else is composed from.
``autograd``
    A small but complete reverse-mode automatic differentiation engine.
    :class:`~repro.tensor.autograd.Tensor` wraps an ``ndarray``, records the
    operations applied to it and can back-propagate through arbitrary DAGs.
``init``
    Parameter initialisers (Xavier/Glorot, Kaiming, normal, zeros) used by the
    NN modules.

The protected attention integrates with this engine through the
``forward_hook`` argument of :func:`repro.tensor.autograd.matmul`: the hook
receives the raw GEMM output (a plain ``ndarray``) and may modify it — this is
where fault injection and ABFT detection/correction run, exactly at the
operation boundary the paper instruments.
"""

from repro.tensor.autograd import (
    Tensor,
    add,
    concat,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    matmul,
    mean,
    mul,
    no_grad,
    relu,
    reshape,
    softmax,
    split_heads,
    sum as tensor_sum,
    tanh,
    tensor,
    transpose,
)
from repro.tensor.init import kaiming_uniform, normal_init, xavier_uniform, zeros_init
from repro.tensor import ops

__all__ = [
    "Tensor",
    "tensor",
    "add",
    "mul",
    "matmul",
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "tanh",
    "layer_norm",
    "dropout",
    "embedding",
    "reshape",
    "transpose",
    "concat",
    "split_heads",
    "mean",
    "tensor_sum",
    "no_grad",
    "ops",
    "xavier_uniform",
    "kaiming_uniform",
    "normal_init",
    "zeros_init",
]

"""Parameter initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so the model
zoo produces identical weights for identical seeds — a requirement for the
fault-injection campaigns, which compare faulty and fault-free runs of the
*same* model.  Initial values are always *drawn on the host* (backend RNGs
differ even for the same seed) and then handed to the owning array backend via
:func:`adopt` — the one h2d crossing of a device-resident model's parameters.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "adopt",
    "xavier_uniform",
    "kaiming_uniform",
    "normal_init",
    "zeros_init",
    "fan_in_out",
]


def adopt(array: np.ndarray, backend: Optional[Any]) -> Any:
    """Adopt a host-initialised array into ``backend``'s array type.

    ``None`` (the NumPy substrate) and backends that already own ``array``
    natively return it unchanged — the host path performs no conversion call,
    which is what lets the counting/spy backend prove the zero-transfer
    property of a same-backend training step.
    """
    if backend is None or backend.is_backend_array(array):
        return array
    return backend.from_numpy(array)


def fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight of the given shape.

    For 2-D weights this is simply ``(rows, cols)``; higher-rank weights
    treat the leading axes as receptive field.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        raise ValueError("weight must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    fan_in = shape[-2] * receptive
    fan_out = shape[-1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = fan_in_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape))


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator, a: float = np.sqrt(5)) -> np.ndarray:
    """Kaiming/He uniform initialisation (PyTorch ``Linear`` default)."""
    fan_in, _ = fan_in_out(shape)
    gain = np.sqrt(2.0 / (1.0 + a**2))
    std = gain / np.sqrt(fan_in)
    bound = np.sqrt(3.0) * std
    return rng.uniform(-bound, bound, size=tuple(shape))


def normal_init(shape: Sequence[int], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal initialisation (BERT/GPT-2 style, std=0.02)."""
    return rng.normal(0.0, std, size=tuple(shape))


def zeros_init(shape: Sequence[int]) -> np.ndarray:
    """All-zeros initialisation (biases, layer-norm beta)."""
    return np.zeros(tuple(shape), dtype=np.float64)

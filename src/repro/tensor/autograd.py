"""A small reverse-mode automatic differentiation engine on pluggable array backends.

The engine provides everything the transformer models in :mod:`repro.models`
need — and nothing more:

* :class:`Tensor` wraps an array owned by one :class:`repro.backend.ArrayBackend`
  (NumPy by default; CuPy / Torch when the model substrate is built on them)
  and records the operation that produced it (its parents plus a backward
  closure).
* :func:`Tensor.backward` runs a topological sort of the recorded DAG and
  accumulates gradients into every tensor with ``requires_grad=True``.
* A library of differentiable operations (GEMM, softmax, GELU, layer norm,
  embedding lookup, dropout, reshaping) built on the pure backend-generic
  kernels in :mod:`repro.tensor.ops`.

Array backends
--------------
Every :class:`Tensor` carries the backend that owns its array (the same seam
:class:`repro.nn.attention.SectionContext` uses), and every operation
dispatches through that backend's ``xp`` namespace.  The rules that keep the
whole graph device-resident:

* children inherit the owning backend of their parents, so one adoption at the
  model boundary (parameters at init, token ids at the embedding lookup)
  carries through forward, backward and the optimizer update without host
  round-trips;
* the root gradient of :func:`Tensor.backward` is seeded with the owning
  namespace's ``ones_like`` — never host NumPy;
* host-side data (Python scalars, freshly drawn dropout masks, attention
  masks) is adopted into the owning backend exactly once, at the operation
  that consumes it.

On the NumPy backend every operation executes the identical op sequence of
the historical pure-NumPy engine, so results are byte-identical to earlier
releases (pinned by the seed-output goldens in the test suite).

ABFT / fault-injection integration
----------------------------------
:func:`matmul` accepts a ``forward_hook``: a callable receiving the raw GEMM
output array and returning the (possibly modified) array to use as the
operation result.  The backward pass of a matrix multiplication does not
depend on its output, so hooks may freely corrupt (fault injection) and repair
(ABFT correction) the forward value without invalidating gradients — this
mirrors how the paper instruments the CUDA GEMMs at the operation boundary.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, backend_of, namespace_of
from repro.tensor import ops

__all__ = [
    "Tensor",
    "GradHookHandle",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "add",
    "sub",
    "mul",
    "div",
    "matmul",
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "tanh",
    "layer_norm",
    "dropout",
    "embedding",
    "reshape",
    "transpose",
    "concat",
    "split_heads",
    "merge_heads",
    "sum",
    "mean",
    "cross_entropy_loss",
]

ArrayLike = Union[float, int, np.ndarray, "Tensor", Any]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


class Tensor:
    """A backend-owned array with an autograd tape.

    Parameters
    ----------
    data:
        Array data.  Non-floating input is cast to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    parents:
        The tensors this one was computed from (internal).
    backward_fn:
        Closure mapping the output gradient to a tuple of parent gradients
        (internal).
    name:
        Optional human-readable tag used in error messages and by the fault
        tracer to identify matrices (e.g. ``"Q"``, ``"AS"``).
    backend:
        The :class:`repro.backend.ArrayBackend` owning ``data``.  ``None``
        (default) resolves it from ``data``'s type; foreign data passed with
        an explicit backend is adopted into that backend's array type.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_parents",
        "_backward_fn",
        "_post_accumulate_grad_hooks",
        "name",
        "backend",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[Any], Tuple[Optional[Any], ...]]] = None,
        name: Optional[str] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        if isinstance(data, Tensor):
            if backend is None:
                backend = data.backend
            data = data.data
        if backend is None:
            backend = backend_of(data)
        arr = data if backend.is_backend_array(data) else backend.asarray(data)
        if not np.issubdtype(backend.dtype_of(arr), np.floating):
            xp = backend.namespace_for(arr)
            arr = xp.astype(arr, xp.float64)
        self.data: Any = arr
        self.grad: Optional[Any] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self._post_accumulate_grad_hooks: Optional[List[Callable[["Tensor"], None]]] = None
        self.name = name
        self.backend = backend

    # -- basic protocol -----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def ndim(self) -> int:
        return len(self.data.shape)

    @property
    def dtype(self) -> np.dtype:
        """Canonical NumPy dtype of the underlying array (on any backend)."""
        return self.backend.dtype_of(self.data)

    @property
    def size(self) -> int:
        return int(np.prod(self.data.shape, dtype=np.int64))

    @property
    def xp(self) -> Any:
        """The owning backend's function namespace, bound to this array."""
        return self.backend.namespace_for(self.data)

    def numpy(self) -> np.ndarray:
        """Export the underlying array to host NumPy (a d2h copy on device
        backends; the array itself on the NumPy reference)."""
        return self.backend.to_numpy(self.data)

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name, backend=self.backend)

    def zero_grad(self) -> None:
        self.grad = None

    def register_post_accumulate_grad_hook(
        self, hook: Callable[["Tensor"], None]
    ) -> "GradHookHandle":
        """Register ``hook(tensor)`` to fire when this leaf's gradient lands.

        During :meth:`backward`, each reachable leaf with
        ``requires_grad=True`` accumulates its gradient exactly once (the
        graph walk pops every node a single time), and the hooks fire
        immediately after that accumulation — while backprop continues on
        nodes earlier in the graph.  This is the gradient-readiness seam the
        overlapped data-parallel trainer uses to launch a bucket's protected
        all-reduce the moment its last member gradient is complete.

        Hooks fire only on leaves the backward pass actually reached, in
        graph (reverse-topological) order.  Returns a removable handle.
        """
        if self._backward_fn is not None:
            raise ValueError(
                "post-accumulate gradient hooks only apply to leaf tensors"
            )
        if self._post_accumulate_grad_hooks is None:
            self._post_accumulate_grad_hooks = []
        self._post_accumulate_grad_hooks.append(hook)
        return GradHookHandle(self, hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # -- graph construction helpers ------------------------------------------

    @staticmethod
    def _wrap(value: ArrayLike, backend: Optional[ArrayBackend] = None) -> "Tensor":
        """Wrap a raw operand; host data adopts into ``backend`` when given.

        Scalars and host arrays meeting a device-resident tensor are adopted
        into its backend here, once, so the binary kernels never mix array
        libraries.  Host-resident backends recognise the NumPy wrap as already
        native, so the NumPy path performs no adoption call at all.
        """
        if isinstance(value, Tensor):
            return value
        if backend is None:
            return Tensor(np.asarray(value, dtype=np.float64))
        if backend.is_backend_array(value):
            # Raw operands wrap as float64, like the host path always did.
            xp = backend.namespace_for(value)
            return Tensor(xp.astype(value, xp.float64, copy=False), backend=backend)
        host = np.asarray(value, dtype=np.float64)
        if backend.is_backend_array(host):
            return Tensor(host, backend=backend)
        return Tensor(backend.asarray(host), backend=backend)

    @staticmethod
    def _wrap_pair(a: ArrayLike, b: ArrayLike) -> Tuple["Tensor", "Tensor"]:
        """Wrap both operands of a binary op, sharing the owning backend."""
        if isinstance(a, Tensor):
            return a, Tensor._wrap(b, backend=a.backend)
        if isinstance(b, Tensor):
            return Tensor._wrap(a, backend=b.backend), b
        return Tensor._wrap(a), Tensor._wrap(b)

    def _make_child(
        self,
        data: Any,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[Any], Tuple[Optional[Any], ...]],
        name: Optional[str] = None,
    ) -> "Tensor":
        backend = _owning_backend(parents, data)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, requires_grad=False, name=name, backend=backend)
        return Tensor(
            data, requires_grad=True, parents=parents, backward_fn=backward_fn,
            name=name, backend=backend,
        )

    # -- operators -----------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        return add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return sub(Tensor._wrap(other, backend=self.backend), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return div(Tensor._wrap(other, backend=self.backend), self)

    def __neg__(self) -> "Tensor":
        return mul(self, -1.0)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return matmul(self, other)

    def reshape(self, *shape: int) -> "Tensor":
        return reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        return transpose(self, axes if axes else None)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return mean(self, axis=axis, keepdims=keepdims)

    # -- backward ------------------------------------------------------------

    def backward(self, grad: Optional[Any] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses), seeded on
        the owning backend so device-resident graphs stay device-resident.
        Gradients accumulate (+=) into every reachable tensor with
        ``requires_grad=True``, matching the PyTorch convention so gradient
        accumulation across micro-batches works naturally.
        """
        xp = self.xp
        if grad is None:
            grad = xp.ones_like(self.data)
        elif not self.backend.is_backend_array(grad):
            # Adopt through the device-bound namespace so an explicit host
            # gradient lands beside this tensor's data, not on the backend's
            # default device.
            grad = xp.asarray(grad)
        dtype = self.dtype
        target = dtype if np.issubdtype(dtype, np.floating) else np.dtype(np.float64)
        if self.backend.dtype_of(grad) != target:
            grad = xp.astype(grad, getattr(xp, target.name), copy=False)
        if tuple(grad.shape) != self.shape:
            raise ValueError(
                f"gradient shape {tuple(grad.shape)} does not match tensor shape {self.shape}"
            )

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # Leaf tensor: accumulate.  Each node is popped exactly once
                # per backward, so the gradient is final here and the
                # post-accumulate hooks may act on it while earlier layers
                # are still back-propagating.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                if node._post_accumulate_grad_hooks:
                    for hook in tuple(node._post_accumulate_grad_hooks):
                        hook(node)
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad


class GradHookHandle:
    """Removable registration of a post-accumulate gradient hook."""

    __slots__ = ("_tensor", "_hook")

    def __init__(self, tensor: Tensor, hook: Callable[[Tensor], None]) -> None:
        self._tensor = tensor
        self._hook = hook

    def remove(self) -> None:
        """Unregister the hook; safe to call more than once."""
        hooks = self._tensor._post_accumulate_grad_hooks
        if hooks is not None and self._hook in hooks:
            hooks.remove(self._hook)


def _owning_backend(parents: Sequence[Tensor], data: Any) -> ArrayBackend:
    """The backend a freshly computed array belongs to.

    The first parent whose backend natively owns ``data`` wins — this is what
    keeps a registered wrapper backend (a spy around NumPy, a pinned Torch
    instance) attached through an operation chain, since resolving by type
    alone would fall back to the base library's registry entry.
    """
    for parent in parents:
        if parent.backend.is_backend_array(data):
            return parent.backend
    return backend_of(data)


def tensor(
    data: ArrayLike,
    requires_grad: bool = False,
    name: Optional[str] = None,
    backend: Optional[ArrayBackend] = None,
) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, name=name, backend=backend)


# ---------------------------------------------------------------------------
# Elementwise binary operations
# ---------------------------------------------------------------------------

def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise addition with broadcasting."""
    a, b = Tensor._wrap_pair(a, b)
    out = a.data + b.data

    def backward(grad):
        return ops.unbroadcast(grad, a.shape), ops.unbroadcast(grad, b.shape)

    return a._make_child(out, (a, b), backward)


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise subtraction with broadcasting."""
    a, b = Tensor._wrap_pair(a, b)
    out = a.data - b.data

    def backward(grad):
        return ops.unbroadcast(grad, a.shape), ops.unbroadcast(-grad, b.shape)

    return a._make_child(out, (a, b), backward)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise multiplication with broadcasting."""
    a, b = Tensor._wrap_pair(a, b)
    out = a.data * b.data

    def backward(grad):
        return (
            ops.unbroadcast(grad * b.data, a.shape),
            ops.unbroadcast(grad * a.data, b.shape),
        )

    return a._make_child(out, (a, b), backward)


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise division with broadcasting."""
    a, b = Tensor._wrap_pair(a, b)
    out = a.data / b.data

    def backward(grad):
        return (
            ops.unbroadcast(grad / b.data, a.shape),
            ops.unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return a._make_child(out, (a, b), backward)


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------

def matmul(
    a: ArrayLike,
    b: ArrayLike,
    forward_hook: Optional[Callable[[Any], Any]] = None,
    name: Optional[str] = None,
) -> Tensor:
    """Batched matrix multiplication ``a @ b`` with an optional forward hook.

    The hook receives the raw output array and must return the array to use
    as the operation's forward value.  Fault injectors corrupt the output
    here, and the ABFT executor detects/corrects it here — both without
    touching gradient computation, because the matmul backward only needs the
    *inputs*.
    """
    a, b = Tensor._wrap_pair(a, b)
    out = ops.batched_matmul(a.data, b.data)
    if forward_hook is not None:
        out = forward_hook(out)

    def backward(grad):
        return ops.matmul_backward(grad, a.data, b.data)

    return a._make_child(out, (a, b), backward, name=name)


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------

def softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Differentiable softmax along ``axis``."""
    x = Tensor._wrap(x)
    out = ops.softmax(x.data, axis=axis)

    def backward(grad):
        return (ops.softmax_backward(grad, out, axis=axis),)

    return x._make_child(out, (x,), backward)


def log_softmax(x: ArrayLike, axis: int = -1) -> Tensor:
    """Differentiable log-softmax along ``axis``."""
    x = Tensor._wrap(x)
    out = ops.log_softmax(x.data, axis=axis)

    def backward(grad):
        return (ops.log_softmax_backward(grad, out, axis=axis),)

    return x._make_child(out, (x,), backward)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def gelu(x: ArrayLike) -> Tensor:
    """Differentiable GELU (tanh approximation)."""
    x = Tensor._wrap(x)
    out = ops.gelu(x.data)

    def backward(grad):
        return (ops.gelu_backward(grad, x.data),)

    return x._make_child(out, (x,), backward)


def relu(x: ArrayLike) -> Tensor:
    """Differentiable ReLU."""
    x = Tensor._wrap(x)
    out = ops.relu(x.data)

    def backward(grad):
        return (ops.relu_backward(grad, x.data),)

    return x._make_child(out, (x,), backward)


def tanh(x: ArrayLike) -> Tensor:
    """Differentiable tanh."""
    x = Tensor._wrap(x)
    out = ops.tanh(x.data)

    def backward(grad):
        return (ops.tanh_backward(grad, out),)

    return x._make_child(out, (x,), backward)


# ---------------------------------------------------------------------------
# Normalisation / regularisation
# ---------------------------------------------------------------------------

def layer_norm(x: ArrayLike, gamma: ArrayLike, beta: ArrayLike, eps: float = 1e-5) -> Tensor:
    """Differentiable layer normalisation over the last axis."""
    x = Tensor._wrap(x)
    gamma = Tensor._wrap(gamma, backend=x.backend)
    beta = Tensor._wrap(beta, backend=x.backend)
    out, x_hat, inv_std = ops.layer_norm(x.data, gamma.data, beta.data, eps=eps)

    def backward(grad):
        dx, dgamma, dbeta = ops.layer_norm_backward(grad, x_hat, inv_std, gamma.data)
        return dx, dgamma, dbeta

    return x._make_child(out, (x, gamma, beta), backward)


def dropout(x: ArrayLike, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Differentiable inverted dropout.

    In eval mode (``training=False``) or with ``p == 0`` this is the identity.
    The mask is drawn on the host from ``rng`` (backend-independent
    reproducibility) and adopted into the owning backend's array type.
    """
    x = Tensor._wrap(x)
    if not training or p == 0.0:
        return x
    mask = ops.dropout_mask(x.shape, p, rng, xp=x.xp)
    out = x.data * mask

    def backward(grad):
        return (grad * mask,)

    return x._make_child(out, (x,), backward)


# ---------------------------------------------------------------------------
# Embedding lookup
# ---------------------------------------------------------------------------

def embedding(weight: ArrayLike, indices: Any) -> Tensor:
    """Differentiable embedding lookup ``weight[indices]``.

    ``indices`` is a plain integer array (no gradient flows into it), adopted
    into the weight's backend once — the h2d crossing of the input batch on
    device substrates.  The gradient w.r.t. ``weight`` scatters the output
    gradient back to the looked-up rows.
    """
    weight = Tensor._wrap(weight)
    idx = indices if weight.backend.is_backend_array(indices) else np.asarray(indices)
    if not weight.backend.is_backend_array(idx):
        # The weight's device-bound namespace, so the ids land beside the
        # table (not on the backend's default device).
        idx = weight.xp.asarray(idx)
    out = weight.data[idx]

    def backward(grad):
        xp = weight.xp
        dw = xp.zeros_like(weight.data)
        xp.add_at(dw, idx.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        return (dw,)

    return weight._make_child(out, (weight,), backward)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

def reshape(x: ArrayLike, shape: Sequence[int]) -> Tensor:
    """Differentiable reshape."""
    x = Tensor._wrap(x)
    original = x.shape
    out = x.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(original),)

    return x._make_child(out, (x,), backward)


def transpose(x: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Differentiable transpose / axis permutation."""
    x = Tensor._wrap(x)
    out = x.xp.transpose(x.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(int(i) for i in np.argsort(axes))

    def backward(grad):
        return (namespace_of(grad).transpose(grad, inverse),)

    return x._make_child(out, (x,), backward)


def concat(tensors: Iterable[ArrayLike], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    wrapped = [Tensor._wrap(t) for t in tensors]
    datas = [t.data for t in wrapped]
    out = wrapped[0].xp.concatenate(datas, axis=axis)
    sizes = [int(d.shape[axis]) for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for i in range(len(datas)):
            slicer = [slice(None)] * len(grad.shape)
            slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return wrapped[0]._make_child(out, tuple(wrapped), backward)


def split_heads(x: ArrayLike, num_heads: int) -> Tensor:
    """Reshape ``(B, S, D)`` into ``(B, H, S, D/H)`` for multi-head attention."""
    x = Tensor._wrap(x)
    b, s, d = x.shape
    if d % num_heads:
        raise ValueError(f"hidden size {d} not divisible by num_heads {num_heads}")
    return transpose(reshape(x, (b, s, num_heads, d // num_heads)), (0, 2, 1, 3))


def merge_heads(x: ArrayLike) -> Tensor:
    """Inverse of :func:`split_heads`: ``(B, H, S, Dh)`` back to ``(B, S, H*Dh)``."""
    x = Tensor._wrap(x)
    b, h, s, dh = x.shape
    return reshape(transpose(x, (0, 2, 1, 3)), (b, s, h * dh))


# ---------------------------------------------------------------------------
# Reductions / losses
# ---------------------------------------------------------------------------

def sum(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Differentiable sum reduction."""
    x = Tensor._wrap(x)
    xp = x.xp
    out = xp.sum(x.data, axis=axis, keepdims=keepdims)

    def backward(grad):
        gxp = namespace_of(grad)
        g = grad
        if axis is not None and not keepdims:
            g = gxp.expand_dims(g, axis=axis)
        return (gxp.copy(gxp.broadcast_to(g, x.shape)),)

    return x._make_child(xp.asarray(out), (x,), backward)


def mean(x: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Differentiable mean reduction."""
    x = Tensor._wrap(x)
    xp = x.xp
    out = xp.mean(x.data, axis=axis, keepdims=keepdims)
    if axis is None:
        count = x.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = int(np.prod([x.shape[a] for a in axes]))

    def backward(grad):
        gxp = namespace_of(grad)
        g = grad
        if axis is not None and not keepdims:
            g = gxp.expand_dims(g, axis=axis)
        return (gxp.copy(gxp.broadcast_to(g, x.shape)) / count,)

    return x._make_child(xp.asarray(out), (x,), backward)


def cross_entropy_loss(logits: ArrayLike, labels: Any) -> Tensor:
    """Mean cross-entropy loss of ``logits`` (N, C) against int ``labels`` (N,).

    Implemented as a fused op (softmax + NLL) with the classic analytic
    gradient ``(softmax - onehot)/N`` for numerical stability.  The loss value
    is a host scalar (reading it is the one d2h sync of a device-resident
    training step, as in any real training loop's ``loss.item()``).
    """
    logits = Tensor._wrap(logits)
    if not logits.backend.is_backend_array(labels):
        labels = np.asarray(labels)
    loss_value = ops.cross_entropy(logits.data, labels)

    def backward(grad):
        g = float(np.asarray(grad))
        return (g * ops.cross_entropy_backward(logits.data, labels),)

    return logits._make_child(np.asarray(loss_value), (logits,), backward, name="loss")

"""Command-line interface for running the reproduction experiments.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) is the
canonical way to regenerate every table and figure, but a plain CLI is handy
for quick looks and for users who do not want pytest in the loop::

    python -m repro list                 # available experiments
    python -m repro table3               # GEMM workload ratios
    python -m repro fig7  --batch-size 8
    python -m repro fig10 --rates 13 16 20
    python -m repro quickstart           # inject + correct one fault
    python -m repro train_parallel --workers 4 --shards 4


Each experiment prints the same plain-text table the corresponding benchmark
prints and returns a process exit code of 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import format_percent, format_table, gemm_ratio_table
from repro.backend import (
    KNOWN_ARRAY_BACKENDS,
    BackendUnavailable,
    available_array_backends,
    resolve_backend_name,
)
from repro.core import (
    CHECKER_BACKENDS,
    PROTECT_SCOPES,
    VERIFICATION_MODES,
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    ErrorRates,
    OperationVulnerability,
    optimize_abft_frequencies,
)
from repro.data import SyntheticMRPC
from repro.faults import DetectionCorrectionCampaign, FaultInjector, FaultSpec, PropagationStudy
from repro.models import build_model, get_config
from repro.nn import ComposedHooks
from repro.perfmodel import (
    EncoderThroughputModel,
    MultiGPUScaleModel,
    RecoveryCostModel,
    TrainingStepCostModel,
)

__all__ = ["main", "EXPERIMENTS"]

MAIN_MODELS = ["bert-base", "gpt2", "gpt-neo", "roberta"]
OVERHEAD_MODELS = ["bert-small", "bert-base", "bert-large", "gpt2", "gpt-neo", "roberta"]


# ---------------------------------------------------------------------------
# Experiment implementations (each returns the printed text)
# ---------------------------------------------------------------------------

def _tiny_model_and_batch(model_name: str, batch: int = 8, seed: int = 0,
                          array_backend: Optional[str] = None):
    model = build_model(
        model_name, size="tiny", rng=np.random.default_rng(seed),
        array_backend=array_backend,
    )
    data = SyntheticMRPC(
        num_examples=max(16, 2 * batch),
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
    )
    encoded = dict(data.encode(range(batch)))
    encoded["attention_mask"] = np.ones_like(encoded["attention_mask"])
    return model, encoded


def run_quickstart(args: argparse.Namespace) -> str:
    model, batch = _tiny_model_and_batch(args.model, array_backend=args.model_array_backend)
    injector = FaultInjector(
        [FaultSpec(matrix=args.matrix, error_type=args.error_type)],
        rng=np.random.default_rng(args.seed),
    )
    checker = ATTNChecker(ATTNCheckerConfig(
        backend=args.backend, async_verification=args.async_verification,
        array_backend=args.array_backend, protect_scope=args.protect_scope,
    ))
    model.eval()
    reference = model(batch["input_ids"], attention_mask=batch["attention_mask"],
                      labels=batch["labels"]).loss_value
    model.set_attention_hooks(ComposedHooks([injector, checker]))
    protected = model(batch["input_ids"], attention_mask=batch["attention_mask"],
                      labels=batch["labels"]).loss_value
    model.set_attention_hooks(None)
    checker.end_step()
    checker.drain()   # settle async verification before reading statistics
    checker.close()
    substrate = getattr(model, "array_backend", None)
    lines = [
        f"backend              : {checker.backend}",
        f"verification mode    : {checker.verification_mode}",
        f"array backend        : {checker.array_backend_name} "
        f"(installed: {', '.join(available_array_backends())})",
        f"model substrate      : {'numpy' if substrate is None else substrate.device_info()}",
        f"transfer time        : {checker.transfer_seconds() * 1e3:.3f} ms",
        f"fault-free loss      : {reference:.6f}",
        f"protected faulty loss: {protected:.6f}",
        f"detections           : {checker.stats.total_detections}",
        f"corrections          : {checker.stats.total_corrections}",
        f"stale detections     : {checker.stats.total_stale_detections}",
        f"residual extremes    : {checker.stats.total_residual_extreme}",
    ]
    return "\n".join(lines)


def run_backends(args: argparse.Namespace) -> str:
    """Compare the fused ProtectionEngine against the per-GEMM reference.

    Runs the same single-fault forward pass under both backends (same seeds)
    for every (matrix, error type) combination and reports whether detection /
    correction decisions and the protected output are byte-identical, plus the
    ABFT wall-clock each backend spent.
    """
    combos = [(m, e) for m in ("Q", "K", "V", "AS", "CL", "O")
              for e in ("inf", "nan", "near_inf")]
    rows = []
    abft_seconds = {name: 0.0 for name in CHECKER_BACKENDS}
    all_identical = True
    for matrix, error_type in combos:
        outputs, decisions = {}, {}
        for backend in CHECKER_BACKENDS:
            model, batch = _tiny_model_and_batch(
                args.model, seed=args.seed, array_backend=args.model_array_backend)
            model.eval()
            injector = FaultInjector(
                [FaultSpec(matrix=matrix, error_type=error_type)],
                rng=np.random.default_rng(args.seed),
            )
            checker = ATTNChecker(ATTNCheckerConfig(
                backend=backend, array_backend=args.array_backend,
            ))
            model.set_attention_hooks(ComposedHooks([injector, checker]))
            outputs[backend] = model(
                batch["input_ids"], attention_mask=batch["attention_mask"],
                labels=batch["labels"],
            ).logits.data.copy()
            model.set_attention_hooks(None)
            decisions[backend] = {
                name: (s.detections, s.corrections, s.aborted_vectors, s.operand_repairs)
                for name, s in checker.stats.sections.items()
            }
            abft_seconds[backend] += checker.overhead_seconds()
        identical = (
            np.array_equal(outputs["fused"], outputs["per_gemm"], equal_nan=True)
            and decisions["fused"] == decisions["per_gemm"]
        )
        all_identical &= identical
        fused = decisions["fused"]
        rows.append([
            matrix, error_type,
            sum(d for d, *_ in fused.values()),
            sum(c for _, c, *_ in fused.values()),
            "yes" if identical else "NO",
        ])
    footer = (
        f"backends byte-identical on all {len(combos)} scenarios; "
        if all_identical else "BACKENDS DIVERGED; "
    ) + (
        f"ABFT time fused {abft_seconds['fused'] * 1e3:.1f} ms vs "
        f"per-GEMM {abft_seconds['per_gemm'] * 1e3:.1f} ms"
    )
    return format_table(
        ["matrix", "error", "detections", "corrections", "identical"], rows,
        title=f"Backend equivalence — fused engine vs per-GEMM reference ({args.model}); {footer}",
    )


def run_verification_modes(args: argparse.Namespace) -> str:
    """Compare the fused engine's immediate / deferred / async verification.

    Runs the same single-fault forward passes under all three modes (same
    seeds) and reports detection/correction counters, stale detections, and
    the critical-path vs total checker time split.  The footer states the two
    cross-mode invariants the test suite enforces: deferred and async make
    byte-identical detection decisions, and async repairs (bounded-staleness
    correction of the retained boundary matrices) match immediate-mode
    correction counts.
    """
    combos = [("Q", "inf"), ("AS", "nan"), ("CL", "inf"), ("O", "near_inf")]
    rows = []
    per_mode = {}
    for mode in VERIFICATION_MODES:
        detections = corrections = stale = 0
        critical = total = 0.0
        signatures = []
        for trial, (matrix, error_type) in enumerate(combos):
            model, batch = _tiny_model_and_batch(
                args.model, batch=4, seed=args.seed,
                array_backend=args.model_array_backend)
            model.eval()
            injector = FaultInjector(
                [FaultSpec(matrix=matrix, error_type=error_type)],
                rng=np.random.default_rng(args.seed + trial),
            )
            checker = ATTNChecker(ATTNCheckerConfig(
                array_backend=args.array_backend, **VERIFICATION_MODE_CONFIGS[mode],
            ))
            model.set_attention_hooks(ComposedHooks([injector, checker]))
            model(batch["input_ids"], attention_mask=batch["attention_mask"],
                  labels=batch["labels"])
            model.set_attention_hooks(None)
            outcomes = checker.end_step() + checker.drain()
            checker.close()
            signatures.append(tuple(
                (o.section, o.layer_index, o.step,
                 o.report.detected, o.report.aborted, o.report.residual_extreme)
                for o in outcomes if o.report is not None
            ))
            detections += checker.stats.total_detections
            corrections += checker.stats.total_corrections
            stale += checker.stats.total_stale_detections
            critical += checker.critical_path_seconds()
            total += checker.overhead_seconds()
        per_mode[mode] = {"corrections": corrections, "signatures": signatures}
        rows.append([
            mode, detections, corrections, stale,
            f"{critical * 1e3:.1f}", f"{total * 1e3:.1f}",
        ])
    identical = per_mode["deferred"]["signatures"] == per_mode["async"]["signatures"]
    parity = per_mode["immediate"]["corrections"] == per_mode["async"]["corrections"]
    footer = (
        ("deferred/async detection decisions byte-identical" if identical
         else "DEFERRED/ASYNC DETECTION DECISIONS DIVERGED")
        + "; "
        + ("async corrections match immediate" if parity
           else "ASYNC CORRECTIONS DIVERGED FROM IMMEDIATE")
    )
    return format_table(
        ["mode", "detections", "corrections", "stale", "critical-path ms", "total ms"],
        rows,
        title=f"Verification modes — fused engine ({args.model}); {footer}",
    )


def run_train(args: argparse.Namespace) -> str:
    """A short protected fine-tuning run on the chosen model substrate.

    Builds the model with ``build_model(..., array_backend=args.model_array_backend)``
    so forward, backward and the optimiser update run on that backend, attaches
    the fused checker (following or pinned per ``--array-backend``), and trains
    for ``--steps`` optimisation steps on synthetic MRPC.  The footer reports
    the checker's ``xfer/*`` transfer total — exactly zero whenever model and
    checker share a backend (the device-resident zero-copy property; the CI
    smoke job greps for it).
    """
    model, batch = _tiny_model_and_batch(
        args.model, batch=args.batch_size, seed=args.seed,
        array_backend=args.model_array_backend,
    )
    from repro.training import Trainer, TrainerConfig

    checker = ATTNChecker(ATTNCheckerConfig(
        backend=args.backend, async_verification=args.async_verification,
        array_backend=args.array_backend, protect_scope=args.protect_scope,
    ))
    trainer = Trainer(model, config=TrainerConfig(learning_rate=5e-4), checker=checker)
    rows = []
    for _ in range(args.steps):
        result = trainer.train_step(batch)
        rows.append([
            result.step, f"{result.loss:.6f}", f"{result.step_seconds * 1e3:.1f}",
            f"{result.abft_seconds * 1e3:.2f}", result.detections, result.corrections,
        ])
    trainer.drain_verifications(batch=batch)
    xfer_ms = checker.transfer_seconds() * 1e3
    footer = (
        f"model substrate {trainer.model_array_backend}, checker array backend "
        f"{trainer.array_backend}; xfer total {xfer_ms:.3f} ms"
        + (" (zero host round-trips)" if xfer_ms == 0.0 else "")
    )
    return format_table(
        ["step", "loss", "step ms", "abft ms", "det", "corr"], rows,
        title=f"Protected training — {args.model} (tiny); {footer}",
    )


def run_train_parallel(args: argparse.Namespace) -> str:
    """Data-parallel protected fine-tuning with the checksummed all-reduce.

    Shards each global batch over ``--shards`` model replicas driven by
    ``--workers`` workers (``--executor`` picks the serial / thread / process
    backend), synchronises gradients through the checksum-protected
    collective, then repeats the run with a single serial worker on the same
    shard count and compares the trained weights byte-for-byte.  The footer
    states the equivalence verdict and the collective dispatch counters — the
    CI smoke job greps for ``byte-identical to 1-worker reference``.
    """
    from repro.training import DataParallelConfig, DataParallelTrainer, ReplicaSpec

    shards = args.shards if args.shards else max(args.workers, 1)
    global_batch = ((args.batch_size + shards - 1) // shards) * shards
    spec = ReplicaSpec(name=args.model, size="tiny", seed=args.seed, num_labels=2)
    probe = spec.build()
    data = SyntheticMRPC(
        num_examples=max(16, args.steps * global_batch),
        max_seq_len=probe.config.max_seq_len,
        vocab_size=probe.config.vocab_size,
    )
    batches = []
    for i in range(args.steps):
        batch = dict(data.encode(range(i * global_batch, (i + 1) * global_batch)))
        batch["attention_mask"] = np.ones_like(batch["attention_mask"])
        batches.append(batch)

    def run(workers: int, executor: str, overlap: Optional[bool] = None):
        config = DataParallelConfig(
            workers=workers,
            shards=shards,
            executor=executor,
            overlap_grad_reduce=args.overlap if overlap is None else overlap,
            bucket_cap_mb=args.bucket_cap_mb,
        )
        trainer = DataParallelTrainer(model_spec=spec, config=config)
        try:
            results = [trainer.train_step(batch) for batch in batches]
            state = trainer.state_dict()
            return results, state, trainer.timers.as_dict(), trainer.collective_counters()
        finally:
            trainer.close()

    results, state, timers, counters = run(args.workers, args.executor)
    # The reference is always the phase-split serial path, so with --overlap
    # the comparison doubles as the overlapped-vs-non-overlapped identity.
    reference_state = (
        run(1, "serial", overlap=False)[1]
        if args.workers > 1 or args.overlap
        else state
    )
    identical = set(state) == set(reference_state) and all(
        np.array_equal(np.asarray(state[k]), np.asarray(reference_state[k]))
        for k in state
    )
    rows = [
        [r.step, f"{r.loss:.6f}", f"{r.step_seconds * 1e3:.1f}",
         r.dirty_reductions, r.reduction_reexecutions, r.detections, r.corrections]
        for r in results
    ]
    footer = (
        ("weights byte-identical to 1-worker reference" if identical
         else "WEIGHTS DIVERGED FROM 1-WORKER REFERENCE")
        + f"; {counters['checksum_encodes']} checksum encodes, "
        f"{counters['checksum_verifies']} verifies, "
        f"{counters['mismatches']} mismatches; "
        f"all-reduce {timers.get('comm/allreduce', 0.0) * 1e3:.1f} ms, "
        f"verify {timers.get('comm/verify', 0.0) * 1e3:.1f} ms"
    )
    return format_table(
        ["step", "mean loss", "step ms", "dirty", "retries", "det", "corr"], rows,
        title=f"Data-parallel protected training — {args.model} (tiny), "
              f"{args.workers} workers, {shards} shards, {args.executor} executor; {footer}",
    )


def run_serve(args: argparse.Namespace) -> str:
    """Protected inference serving on a tiny causal decoder.

    Generates a deterministic request stream, serves it twice — protection
    off, then protection on (fused engine, sections always on as the
    incremental decode checksums require) — and reports per-configuration
    p50/p99 latency, tokens/sec, and the checker's detection counters.  The
    two runs see identical traffic; fault-free they produce byte-identical
    tokens (asserted in the footer).
    """
    from repro.serving import RequestGenerator, ServingConfig, ServingEngine

    model_name = args.model if args.model in ("gpt2", "gpt-neo") else "gpt2"
    reports = {}
    token_streams = {}
    for protected in (False, True):
        model = build_model(model_name, size="tiny", rng=np.random.default_rng(args.seed))
        checker = None
        if protected:
            checker = ATTNChecker(ATTNCheckerConfig(
                backend=args.backend, array_backend=args.array_backend,
                protect_scope=args.protect_scope,
            ))
            model.set_attention_hooks(checker)
        requests = RequestGenerator(
            vocab_size=model.config.vocab_size,
            prompt_len_range=(3, 6),
            new_tokens_range=(2, 5),
            seed=args.seed,
        ).generate(args.requests)
        engine = ServingEngine(
            model, checker=checker,
            config=ServingConfig(max_batch_size=args.batch_size),
        )
        report = engine.run(requests)
        if checker is not None:
            checker.close()
        reports[protected] = report
        token_streams[protected] = [r.tokens for r in report.results]
    identical = token_streams[False] == token_streams[True]
    rows = []
    for protected, report in reports.items():
        data = report.to_dict()
        rows.append([
            "on" if protected else "off",
            data["num_completed"], data["num_evicted"], data["total_new_tokens"],
            f"{data['latency_p50_ms']:.2f}", f"{data['latency_p99_ms']:.2f}",
            f"{data['tokens_per_second']:.0f}",
            data["checker_stats"].get("detections", 0),
        ])
    footer = (
        "fault-free protected tokens byte-identical to unprotected"
        if identical else "PROTECTED TOKENS DIVERGED FROM UNPROTECTED"
    )
    return format_table(
        ["protection", "completed", "evicted", "new tokens",
         "p50 ms", "p99 ms", "tok/s", "detections"],
        rows,
        title=f"Protected serving — {model_name} (tiny), "
              f"{args.requests} requests, batch {args.batch_size}; {footer}",
    )


def run_table2(args: argparse.Namespace) -> str:
    model, batch = _tiny_model_and_batch(args.model, batch=4)
    study = PropagationStudy(model, batch, rng=np.random.default_rng(args.seed))
    rows = []
    for error_type in ("inf", "nan", "near_inf"):
        for matrix in ("Q", "K", "V", "AS", "CL"):
            result = study.trace(matrix, error_type)
            rows.append([error_type, matrix] + [result.cell(m) for m in ("Q", "K", "V", "AS", "AP", "CL", "O")])
    return format_table(
        ["inject", "into", "Q", "K", "V", "AS", "AP", "CL", "O"], rows,
        title=f"Table 2 — error propagation ({args.model}, tiny config)",
    )


def run_table3(args: argparse.Namespace) -> str:
    table = gemm_ratio_table(model_names=MAIN_MODELS, batch_size=args.batch_size, size="paper")
    rows = [[name, format_percent(table[name].gemm_ratio)] for name in MAIN_MODELS]
    return format_table(["model", "GEMM ratio"], rows, title="Table 3 — GEMM workload ratio of attention")


def run_sec52(args: argparse.Namespace) -> str:
    model, batch = _tiny_model_and_batch(args.model, batch=4)
    campaign = DetectionCorrectionCampaign(model, batch, rng=np.random.default_rng(args.seed))
    results = campaign.run(trials=args.trials)
    rows = [
        [r.matrix, r.error_type, format_percent(r.detection_rate),
         format_percent(r.correction_rate), format_percent(r.recovery_rate)]
        for r in results
    ]
    footer = "ALL extreme errors corrected" if DetectionCorrectionCampaign.all_corrected(results) else "NOT all corrected"
    return format_table(
        ["matrix", "error", "detected", "corrected", "restored"], rows,
        title=f"Section 5.2 — detection & correction ({args.model}); {footer}",
    )


def run_fig7(args: argparse.Namespace) -> str:
    rows = []
    for name in OVERHEAD_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=args.batch_size)
        rows.append([name, format_percent(cost.attention_overhead()), format_percent(cost.step_overhead())])
    return format_table(
        ["model", "attention overhead", "per-step overhead"], rows,
        title=f"Figure 7 — ATTNChecker overhead (modelled A100, batch {args.batch_size})",
    )


def run_fig8(args: argparse.Namespace) -> str:
    rows = []
    for name in MAIN_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=args.batch_size)
        rows.append([
            name,
            format_percent(cost.attention_overhead(optimized=True)),
            format_percent(cost.attention_overhead(optimized=False)),
            format_percent(cost.step_overhead(optimized=True)),
            format_percent(cost.step_overhead(optimized=False)),
        ])
    return format_table(
        ["model", "attn OPT", "attn Non-OPT", "step OPT", "step Non-OPT"], rows,
        title=f"Figure 8 — overhead with / without GPU optimisation (batch {args.batch_size})",
    )


def run_fig9(args: argparse.Namespace) -> str:
    sweep = EncoderThroughputModel()
    custom, cublas = sweep.model_custom(), sweep.model_cublas()
    rows = [
        [c.batch_size, f"{c.throughput_tbps:.2f}", f"{b.throughput_tbps:.3f}"]
        for c, b in zip(custom, cublas)
    ]
    return format_table(
        ["batch", "ATTNChecker (TB/s)", "cuBLAS (TB/s)"], rows,
        title="Figure 9 — checksum-encoding throughput (modelled A100)",
    )


def run_fig10(args: argparse.Namespace) -> str:
    config = get_config("bert-base", size="paper")
    vulnerability = OperationVulnerability.from_table4("bert-base")
    rows = []
    for rate in args.rates:
        plan = optimize_abft_frequencies(
            config, batch_size=16, error_rates=ErrorRates.from_errors_per_1e25_flops(rate),
            vulnerability=vulnerability, target_coverage=1 - 1e-11,
            flops_multiplier=12 * 3 * 8,
        )
        rows.append([
            rate, f"{plan.frequencies['AS']:.2f}", f"{plan.frequencies['CL']:.2f}",
            f"{plan.frequencies['O']:.2f}", format_percent(plan.relative_overhead),
        ])
    return format_table(
        ["errors/1e25 flops", "f_AS", "f_CL", "f_O", "ABFT time vs always-on"], rows,
        title="Figure 10 — adaptive ABFT detection frequencies",
    )


def run_fig11(args: argparse.Namespace) -> str:
    rows = []
    for name in MAIN_MODELS:
        comparison = RecoveryCostModel(get_config(name, size="paper"), batch_size=args.batch_size).compare()
        rows.append([
            name, format_percent(comparison.checkpoint_restore_overhead, digits=0),
            format_percent(comparison.attnchecker_overhead), f"{comparison.improvement:.0f}x",
        ])
    return format_table(
        ["model", "checkpoint/restore", "ATTNChecker", "reduction"], rows,
        title="Figure 11 — per-step recovery overhead (modelled A100)",
    )


def run_fig12(args: argparse.Namespace) -> str:
    rows = [
        [p.model_name, f"{p.parameters / 1e9:.0f}B", f"{p.step_seconds:.2f}",
         format_percent(p.abft_overhead, digits=2)]
        for p in MultiGPUScaleModel(num_gpus=args.gpus).sweep()
    ]
    return format_table(
        ["model", "params", "step (s)", "ATTNChecker overhead"], rows,
        title=f"Figure 12 — data-parallel training on {args.gpus} GPUs (modelled)",
    )


#: Registry of experiments exposed by the CLI.
EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "quickstart": run_quickstart,
    "train": run_train,
    "train_parallel": run_train_parallel,
    "serve": run_serve,
    "backends": run_backends,
    "verification_modes": run_verification_modes,
    "table2": run_table2,
    "table3": run_table3,
    "sec52": run_sec52,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
}


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------

def _array_backend_name(name: str) -> str:
    """Argparse type for ``--array-backend``: validate against the registry.

    Both failure modes produce a message listing what is *known* (registered
    backend names) versus what is *installed* (importable on this machine),
    so an unknown or missing name tells the user exactly what to do.
    """
    if name == "auto":
        return name
    try:
        resolve_backend_name(name)
    except (ValueError, BackendUnavailable) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATTNChecker reproduction — run individual experiments from the command line.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["list"],
                        help="experiment to run, or 'list' to enumerate them")
    parser.add_argument("--model", default="bert-base", help="model name for the measured experiments")
    parser.add_argument("--matrix", default="AS", help="fault-injection matrix for quickstart")
    parser.add_argument("--error-type", default="inf", choices=["inf", "nan", "near_inf", "numeric"])
    parser.add_argument("--backend", default="fused", choices=list(CHECKER_BACKENDS),
                        help="ATTNChecker mechanics backend: fused ProtectionEngine "
                             "(default) or the per-GEMM reference implementation")
    parser.add_argument("--protect-scope", default="attention", choices=list(PROTECT_SCOPES),
                        help="protected-section scope: 'attention' (default, the "
                             "paper's three sections), 'attention+ffn' (adds the "
                             "FF1/FF2 feed-forward sections) or 'full' (every "
                             "registered block)")
    parser.add_argument("--array-backend", default="auto", type=_array_backend_name,
                        metavar="{auto," + ",".join(KNOWN_ARRAY_BACKENDS) + "}",
                        help="array library the checksum chain runs on: 'auto' "
                             "(default) follows the model's arrays; naming a "
                             "registered backend pins the fused engine to it "
                             f"(known: {', '.join(KNOWN_ARRAY_BACKENDS)}; "
                             f"installed here: {', '.join(available_array_backends())})")
    parser.add_argument("--model-array-backend", default=None, type=_array_backend_name,
                        metavar="{auto," + ",".join(KNOWN_ARRAY_BACKENDS) + "}",
                        help="array library the *model substrate* lives on "
                             "(build_model(..., array_backend=...)): parameters, "
                             "activations, gradients and optimizer state are "
                             "device-resident on that backend; default is the "
                             "pure-NumPy substrate")
    parser.add_argument("--async", dest="async_verification", action="store_true",
                        help="verify boundary checksums asynchronously on a worker "
                             "thread, off the critical path (fused backend only)")
    parser.add_argument("--steps", type=int, default=4,
                        help="optimisation steps for the train experiments")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the train_parallel experiment")
    parser.add_argument("--shards", type=int, default=None,
                        help="data-parallel shard (replica) count for "
                             "train_parallel; defaults to --workers")
    parser.add_argument("--executor", default="thread",
                        choices=["serial", "thread", "process"],
                        help="execution backend for the train_parallel workers")
    parser.add_argument("--overlap", action="store_true",
                        help="bucketed backward-overlapped gradient reduction "
                             "for train_parallel (byte-identical, overlapped)")
    parser.add_argument("--bucket-cap-mb", type=float, default=1.0,
                        dest="bucket_cap_mb",
                        help="soft per-bucket size cap in MiB for --overlap")
    parser.add_argument("--trials", type=int, default=2, help="trials per cell for campaign experiments")
    parser.add_argument("--requests", type=int, default=8,
                        help="request count for the serve experiment")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--gpus", type=int, default=1024, help="GPU count for fig12")
    parser.add_argument("--rates", type=float, nargs="+", default=[13, 14, 15, 16, 17, 18, 19, 20],
                        help="error rates (per 1e25 flops) for fig10")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    text = EXPERIMENTS[args.experiment](args)
    print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
